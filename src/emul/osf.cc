#include "src/emul/osf.h"

namespace spin {
namespace emul {

// --- OsfNet -------------------------------------------------------------------

OsfNet::OsfNet(Dispatcher* dispatcher)
    : AddTcpPortHandler("OsfNet.AddTcpPortHandler", &module_, nullptr,
                        dispatcher),
      DelTcpPortHandler("OsfNet.DelTcpPortHandler", &module_, nullptr,
                        dispatcher) {
  dispatcher->InstallHandler(AddTcpPortHandler, &OsfNet::OnAddPort, this,
                             {.module = &module_});
  dispatcher->InstallHandler(DelTcpPortHandler, &OsfNet::OnDelPort, this,
                             {.module = &module_});
}

void OsfNet::OnAddPort(OsfNet* net, int32_t port) { net->ports_.insert(port); }
void OsfNet::OnDelPort(OsfNet* net, int32_t port) { net->ports_.erase(port); }

void OsfNet::RegisterPort(int32_t port) { AddTcpPortHandler.Raise(port); }
void OsfNet::UnregisterPort(int32_t port) { DelTcpPortHandler.Raise(port); }

// --- OsfEmulator ----------------------------------------------------------------

OsfEmulator::OsfEmulator(Kernel& kernel, fs::Vfs& vfs)
    : EventNotify("Events.EventNotify", &module_, nullptr,
                  &kernel.dispatcher()),
      kernel_(kernel),
      vfs_(vfs) {
  // select() raises EventNotify; with no listener installed the raise must
  // be harmless, so provide a no-op default.
  kernel_.dispatcher().InstallDefaultHandler(
      EventNotify, +[](Strand*) {}, {.module = &module_});
  binding_ = kernel_.dispatcher().InstallHandler(
      kernel_.MachineTrapSyscall, &OsfEmulator::Syscall, this,
      {.module = &module_});
  kernel_.dispatcher().AddGuard(kernel_.MachineTrapSyscall, binding_,
                                &OsfEmulator::SyscallGuard, this);
}

OsfEmulator::~OsfEmulator() {
  if (binding_ != nullptr && binding_->active.load()) {
    kernel_.dispatcher().Uninstall(binding_, &module_);
  }
}

void OsfEmulator::AdoptTask(AddressSpace& space) { tasks_.insert(space.id()); }

bool OsfEmulator::IsOsfTask(const AddressSpace* space) const {
  return space != nullptr && tasks_.count(space->id()) > 0;
}

bool OsfEmulator::SyscallGuard(OsfEmulator* emulator, Strand* strand,
                               SavedState& state) {
  (void)state;
  return emulator->IsOsfTask(strand->space());
}

void OsfEmulator::Syscall(OsfEmulator* emulator, Strand* strand,
                          SavedState& state) {
  ++emulator->handled_;
  switch (state.v0) {
    case kOsfOpen:
      state.v0 = emulator->vfs_.Open.Raise(
          reinterpret_cast<const char*>(state.a[0]),
          static_cast<int32_t>(state.a[1]));
      break;
    case kOsfRead:
      state.v0 = emulator->vfs_.Read.Raise(
          state.a[0], reinterpret_cast<char*>(state.a[1]), state.a[2]);
      break;
    case kOsfWrite:
      state.v0 = emulator->vfs_.Write.Raise(
          state.a[0], reinterpret_cast<const char*>(state.a[1]),
          state.a[2]);
      break;
    case kOsfClose:
      state.v0 = emulator->vfs_.CloseFd.Raise(state.a[0]);
      break;
    case kOsfSelect:
      ++emulator->selects_;
      emulator->EventNotify.Raise(strand);
      state.v0 = 0;
      break;
    case kOsfNanosleep:
      emulator->kernel_.SleepUntil(
          *strand, emulator->kernel_.now_ns() +
                       static_cast<uint64_t>(state.a[0]));
      state.v0 = 0;
      break;
    case kOsfGetTime:
      state.v0 = static_cast<int64_t>(emulator->kernel_.now_ns());
      break;
    default:
      state.error = 78;  // ENOSYS
      state.v0 = -1;
      break;
  }
}

// --- SyscallTracer ---------------------------------------------------------------

SyscallTracer::SyscallTracer(Kernel& kernel, AddressSpace& traced)
    : RecordEvent("Tracer.Record", &module_, nullptr, &kernel.dispatcher()),
      kernel_(kernel),
      traced_space_(traced.id()) {
  record_binding_ = kernel_.dispatcher().InstallHandler(
      RecordEvent, &SyscallTracer::OnRecord, this, {.module = &module_});
  kernel_.dispatcher().SetEventAsync(RecordEvent, true, &module_);

  // First-constrained so the trace observes the syscall number before any
  // emulator handler overwrites v0 with its result — the §2.3 ordering
  // rationale ("executed in an order that respects their dependencies").
  hook_binding_ = kernel_.dispatcher().InstallHandler(
      kernel_.MachineTrapSyscall, &SyscallTracer::Trace, this,
      {.order = {OrderKind::kFirst}, .module = &module_});
  kernel_.dispatcher().AddGuard(kernel_.MachineTrapSyscall, hook_binding_,
                                &SyscallTracer::TraceGuard, this);
}

SyscallTracer::~SyscallTracer() {
  if (hook_binding_ != nullptr && hook_binding_->active.load()) {
    kernel_.dispatcher().Uninstall(hook_binding_, &module_);
  }
  // Drain detached recordings before tearing down state they touch.
  kernel_.dispatcher().pool().Drain();
  if (record_binding_ != nullptr && record_binding_->active.load()) {
    kernel_.dispatcher().Uninstall(record_binding_, &module_);
  }
}

bool SyscallTracer::TraceGuard(SyscallTracer* tracer, Strand* strand,
                               SavedState& state) {
  (void)state;
  return strand->space() != nullptr &&
         strand->space()->id() == tracer->traced_space_;
}

void SyscallTracer::Trace(SyscallTracer* tracer, Strand* strand,
                          SavedState& state) {
  tracer->RecordEvent.Raise(static_cast<int64_t>(strand->id()), state.v0);
}

void SyscallTracer::OnRecord(SyscallTracer* tracer, int64_t strand_id,
                             int64_t syscall) {
  std::lock_guard<Spinlock> lock(tracer->mu_);
  tracer->records_.push_back(
      Record{static_cast<uint64_t>(strand_id), syscall});
}

std::vector<SyscallTracer::Record> SyscallTracer::Take() {
  std::lock_guard<Spinlock> lock(mu_);
  std::vector<Record> out;
  out.swap(records_);
  return out;
}

size_t SyscallTracer::count() const {
  std::lock_guard<Spinlock> lock(mu_);
  return records_.size();
}

}  // namespace emul
}  // namespace spin
