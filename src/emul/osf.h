// The OSF/1 (Digital UNIX) emulator slice used by the Table 3 workload:
// read/write/open/close/select system calls over the VFS, the
// Events.EventNotify event raised by the select implementation, and the
// OsfNet port-handler events.
#ifndef SRC_EMUL_OSF_H_
#define SRC_EMUL_OSF_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/fs/vfs.h"
#include "src/kernel/kernel.h"

namespace spin {
namespace emul {

// OSF/1 syscall numbers.
inline constexpr int64_t kOsfRead = 3;
inline constexpr int64_t kOsfWrite = 4;
inline constexpr int64_t kOsfOpen = 45;
inline constexpr int64_t kOsfClose = 6;
inline constexpr int64_t kOsfSelect = 93;
inline constexpr int64_t kOsfNanosleep = 203;  // a[0] = duration in ns
inline constexpr int64_t kOsfGetTime = 116;    // -> kernel clock in v0

// OsfNet: the networking glue module whose Add/DelTcpPortHandler events
// appear in Table 3 — raised as applications bind and release TCP ports.
class OsfNet {
 public:
  explicit OsfNet(Dispatcher* dispatcher);

  Event<void(int32_t)> AddTcpPortHandler;
  Event<void(int32_t)> DelTcpPortHandler;

  void RegisterPort(int32_t port);
  void UnregisterPort(int32_t port);

  const std::unordered_set<int32_t>& ports() const { return ports_; }
  const Module& module() const { return module_; }

 private:
  static void OnAddPort(OsfNet* net, int32_t port);
  static void OnDelPort(OsfNet* net, int32_t port);

  Module module_{"OsfNet"};
  std::unordered_set<int32_t> ports_;
};

class OsfEmulator {
 public:
  OsfEmulator(Kernel& kernel, fs::Vfs& vfs);
  ~OsfEmulator();

  // Raised by the select implementation (Table 3's Events.EventNotify).
  Event<void(Strand*)> EventNotify;

  void AdoptTask(AddressSpace& space);
  bool IsOsfTask(const AddressSpace* space) const;

  uint64_t handled() const { return handled_; }
  uint64_t selects() const { return selects_; }
  const Module& module() const { return module_; }

 private:
  static bool SyscallGuard(OsfEmulator* emulator, Strand* strand,
                           SavedState& state);
  static void Syscall(OsfEmulator* emulator, Strand* strand,
                      SavedState& state);

  Module module_{"OsfUnix"};
  Kernel& kernel_;
  fs::Vfs& vfs_;
  std::unordered_set<uint64_t> tasks_;
  BindingHandle binding_;
  uint64_t handled_ = 0;
  uint64_t selects_ = 0;
};

// A per-application asynchronous system-call tracer (§2.6: "our in-kernel
// UNIX server uses asynchronous events to implement a per-application
// system call tracer"). MachineTrap.Syscall takes its state by reference,
// and by-ref events may not be asynchronous — so the tracer's guarded
// synchronous hook copies the two words it needs and raises its own
// fully-asynchronous Tracer.Record event; log processing runs detached.
class SyscallTracer {
 public:
  SyscallTracer(Kernel& kernel, AddressSpace& traced);
  ~SyscallTracer();

  struct Record {
    uint64_t strand_id;
    int64_t syscall;
  };

  // The detached recording channel (configured as an asynchronous event).
  Event<void(int64_t, int64_t)> RecordEvent;

  // Drain recorded entries (thread-safe; the handler runs on pool threads).
  std::vector<Record> Take();
  size_t count() const;

 private:
  static bool TraceGuard(SyscallTracer* tracer, Strand* strand,
                         SavedState& state);
  static void Trace(SyscallTracer* tracer, Strand* strand,
                    SavedState& state);
  static void OnRecord(SyscallTracer* tracer, int64_t strand_id,
                       int64_t syscall);

  Module module_{"SyscallTracer"};
  Kernel& kernel_;
  uint64_t traced_space_;
  BindingHandle hook_binding_;
  BindingHandle record_binding_;
  mutable Spinlock mu_;
  std::vector<Record> records_;
};

}  // namespace emul
}  // namespace spin

#endif  // SRC_EMUL_OSF_H_
