// Safe in-kernel dynamic linking (the Sirer et al. 96 substrate; paper §2).
//
// "First, the extension's code is dynamically linked into the operating
// system kernel. The dynamic linker resolves all outstanding unresolved
// references in the extension code against a collection of interfaces
// explicitly exported by the system." Linking is the first line of access
// control (§2.5): a domain's link authorizer can deny resolution, which
// "prevents the requester from accessing any of the symbols, and hence
// events, exported by any of the modules governed by the authorizer."
//
// A Domain is a set of typed exported symbols (procedures, events, data)
// plus a set of typed unresolved imports. Resolve() matches imports against
// another domain's exports with full signature checking. Combine() forms
// aggregate namespaces, mirroring SPIN's Domain.Combine.
#ifndef SRC_LINKER_DOMAIN_H_
#define SRC_LINKER_DOMAIN_H_

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/dispatcher.h"
#include "src/types/module.h"
#include "src/types/signature.h"

namespace spin {

enum class SymbolKind : uint8_t { kProcedure, kEvent, kData };

struct Symbol {
  std::string name;
  SymbolKind kind = SymbolKind::kProcedure;
  void* address = nullptr;      // procedure entry or data pointer
  EventBase* event = nullptr;   // kEvent
  ProcSig sig;                  // kProcedure / kEvent signature
  size_t data_size = 0;         // kData
  const Module* exporter = nullptr;
};

enum class LinkStatus {
  kOk,
  kUnresolved,
  kDuplicateExport,
  kSymbolTypeMismatch,
  kLinkDenied,
  kUnknownSymbol,
};

const char* LinkStatusName(LinkStatus status);

class LinkError : public std::runtime_error {
 public:
  LinkError(LinkStatus status, const std::string& detail)
      : std::runtime_error(std::string(LinkStatusName(status)) + ": " +
                           detail),
        status_(status) {}
  LinkStatus status() const { return status_; }

 private:
  LinkStatus status_;
};

struct LinkRequest {
  const class Domain* importer = nullptr;
  const Module* requestor = nullptr;
  const Symbol* symbol = nullptr;  // the export being resolved
  void* credentials = nullptr;
};

using LinkAuthorizer = bool (*)(const LinkRequest& request, void* ctx);

class Domain {
 public:
  Domain(std::string name, const Module* module)
      : name_(std::move(name)), module_(module) {}
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  const std::string& name() const { return name_; }
  const Module* module() const { return module_; }

  // --- Export side ------------------------------------------------------

  template <typename R, typename... A>
  void ExportProcedure(const std::string& symbol, R (*fn)(A...)) {
    AddExport(Symbol{symbol, SymbolKind::kProcedure,
                     reinterpret_cast<void*>(fn), nullptr,
                     MakeProcSig<R(A...)>(), 0, module_});
  }

  void ExportEvent(EventBase& event) {
    AddExport(Symbol{event.name(), SymbolKind::kEvent, nullptr, &event,
                     event.sig(), 0, module_});
  }

  void ExportData(const std::string& symbol, void* ptr, size_t size) {
    AddExport(Symbol{symbol, SymbolKind::kData, ptr, nullptr, ProcSig{},
                     size, module_});
  }

  // Authorizer consulted once per importer domain on first resolution
  // against this domain; denial blocks every symbol (§2.5).
  void SetLinkAuthorizer(LinkAuthorizer authorizer, void* ctx) {
    authorizer_ = authorizer;
    authorizer_ctx_ = ctx;
  }

  // --- Import side ------------------------------------------------------

  template <typename R, typename... A>
  void ImportProcedure(const std::string& symbol) {
    imports_.push_back(Import{symbol, SymbolKind::kProcedure,
                              MakeProcSig<R(A...)>(), nullptr});
  }

  template <typename Sig>
  void ImportEvent(const std::string& symbol) {
    imports_.push_back(
        Import{symbol, SymbolKind::kEvent, MakeProcSig<Sig>(), nullptr});
  }

  void ImportData(const std::string& symbol) {
    imports_.push_back(Import{symbol, SymbolKind::kData, ProcSig{}, nullptr});
  }

  // Resolves as many outstanding imports as possible against `exporter`.
  // Throws LinkError on denial or signature mismatch; silently leaves
  // imports that `exporter` does not provide (they may resolve against a
  // later domain, as in SPIN's incremental linking).
  void Resolve(const Domain& exporter, void* credentials = nullptr);

  // Aggregates another domain's exports into this one (Domain.Combine).
  // Duplicate names throw kDuplicateExport.
  void Combine(const Domain& other);

  bool fully_resolved() const;
  std::vector<std::string> UnresolvedImports() const;

  // --- Symbol access (post-link) -----------------------------------------

  // Typed lookup of a resolved procedure import. Signature re-checked.
  template <typename R, typename... A>
  auto GetProcedure(const std::string& symbol) const -> R (*)(A...) {
    const Symbol* s = FindResolved(symbol, SymbolKind::kProcedure);
    if (!(s->sig.SameShape(MakeProcSig<R(A...)>()))) {
      throw LinkError(LinkStatus::kSymbolTypeMismatch, symbol);
    }
    return reinterpret_cast<R (*)(A...)>(s->address);
  }

  // Typed lookup of a resolved event import.
  template <typename Sig>
  Event<Sig>* GetEvent(const std::string& symbol) const {
    const Symbol* s = FindResolved(symbol, SymbolKind::kEvent);
    if (!(s->sig.SameShape(MakeProcSig<Sig>()))) {
      throw LinkError(LinkStatus::kSymbolTypeMismatch, symbol);
    }
    return static_cast<Event<Sig>*>(s->event);
  }

  void* GetData(const std::string& symbol, size_t* size = nullptr) const {
    const Symbol* s = FindResolved(symbol, SymbolKind::kData);
    if (size != nullptr) {
      *size = s->data_size;
    }
    return s->address;
  }

  const std::unordered_map<std::string, Symbol>& exports() const {
    return exports_;
  }

 private:
  struct Import {
    std::string name;
    SymbolKind kind;
    ProcSig sig;
    const Symbol* resolved;  // points into the exporter's symbol table
  };

  void AddExport(Symbol symbol);
  const Symbol* FindResolved(const std::string& symbol,
                             SymbolKind kind) const;

  std::string name_;
  const Module* module_;
  std::unordered_map<std::string, Symbol> exports_;
  std::vector<Import> imports_;
  LinkAuthorizer authorizer_ = nullptr;
  void* authorizer_ctx_ = nullptr;
};

// The kernel's linker: a registry of named domains plus the two-phase
// extension loading protocol of §2 (link, then let the extension install
// handlers through the resolved events).
class Linker {
 public:
  Domain& CreateDomain(const std::string& name, const Module* module);
  Domain* Find(const std::string& name);

  // Resolves `importer` against every registered domain (in registration
  // order), as SPIN's kernel namespace did.
  void LinkAgainstAll(Domain& importer, void* credentials = nullptr);

  size_t domain_count() const { return domains_.size(); }

 private:
  std::vector<std::unique_ptr<Domain>> domains_;
};

}  // namespace spin

#endif  // SRC_LINKER_DOMAIN_H_
