#include "src/linker/domain.h"

#include <algorithm>

namespace spin {

const char* LinkStatusName(LinkStatus status) {
  switch (status) {
    case LinkStatus::kOk:
      return "ok";
    case LinkStatus::kUnresolved:
      return "unresolved imports remain";
    case LinkStatus::kDuplicateExport:
      return "duplicate export";
    case LinkStatus::kSymbolTypeMismatch:
      return "symbol type mismatch";
    case LinkStatus::kLinkDenied:
      return "link denied by exporter's authorizer";
    case LinkStatus::kUnknownSymbol:
      return "unknown symbol";
  }
  return "<bad>";
}

void Domain::AddExport(Symbol symbol) {
  auto [it, inserted] = exports_.try_emplace(symbol.name, std::move(symbol));
  if (!inserted) {
    throw LinkError(LinkStatus::kDuplicateExport, it->first);
  }
}

void Domain::Resolve(const Domain& exporter, void* credentials) {
  for (Import& import : imports_) {
    if (import.resolved != nullptr) {
      continue;
    }
    auto it = exporter.exports_.find(import.name);
    if (it == exporter.exports_.end()) {
      continue;  // may resolve against a later domain
    }
    const Symbol& symbol = it->second;
    // Authorization precedes type disclosure: a denied importer learns
    // nothing about the symbol.
    if (exporter.authorizer_ != nullptr) {
      LinkRequest request{this, module_, &symbol, credentials};
      if (!exporter.authorizer_(request, exporter.authorizer_ctx_)) {
        throw LinkError(LinkStatus::kLinkDenied,
                        name_ + " -> " + exporter.name_ + ":" + import.name);
      }
    }
    if (symbol.kind != import.kind ||
        (import.kind != SymbolKind::kData &&
         !symbol.sig.SameShape(import.sig))) {
      throw LinkError(LinkStatus::kSymbolTypeMismatch, import.name);
    }
    import.resolved = &symbol;
  }
}

void Domain::Combine(const Domain& other) {
  for (const auto& [name, symbol] : other.exports_) {
    AddExport(symbol);
  }
}

bool Domain::fully_resolved() const {
  return std::all_of(imports_.begin(), imports_.end(),
                     [](const Import& i) { return i.resolved != nullptr; });
}

std::vector<std::string> Domain::UnresolvedImports() const {
  std::vector<std::string> names;
  for (const Import& import : imports_) {
    if (import.resolved == nullptr) {
      names.push_back(import.name);
    }
  }
  return names;
}

const Symbol* Domain::FindResolved(const std::string& symbol,
                                   SymbolKind kind) const {
  for (const Import& import : imports_) {
    if (import.name == symbol && import.resolved != nullptr) {
      if (import.kind != kind) {
        throw LinkError(LinkStatus::kSymbolTypeMismatch, symbol);
      }
      return import.resolved;
    }
  }
  throw LinkError(LinkStatus::kUnknownSymbol, symbol);
}

Domain& Linker::CreateDomain(const std::string& name, const Module* module) {
  domains_.push_back(std::make_unique<Domain>(name, module));
  return *domains_.back();
}

Domain* Linker::Find(const std::string& name) {
  for (const auto& domain : domains_) {
    if (domain->name() == name) {
      return domain.get();
    }
  }
  return nullptr;
}

void Linker::LinkAgainstAll(Domain& importer, void* credentials) {
  for (const auto& domain : domains_) {
    if (domain.get() != &importer) {
      importer.Resolve(*domain, credentials);
    }
  }
  if (!importer.fully_resolved()) {
    std::string detail = importer.name() + " missing:";
    for (const std::string& name : importer.UnresolvedImports()) {
      detail += " " + name;
    }
    throw LinkError(LinkStatus::kUnresolved, detail);
  }
}

}  // namespace spin
