// LogFs: a log-structured filesystem provided as an extension (§1: "an
// application may provide a new in-kernel file system").
//
// LogFs attaches to the same five VFS events as the base UFS
// implementation; its guards claim exactly the paths under its mount
// prefix and the fds in its private range, while the UFS guards decline
// them. The two filesystems compose without referencing each other — the
// multi-extension composition that §1.2 argues dynamic linking alone
// cannot express.
//
// Storage model: an append-only log of (path, data) records. Writes append
// records; reads materialize a file by replaying its records in order;
// Compact() folds each file's records into one.
#ifndef SRC_FS_LOGFS_H_
#define SRC_FS_LOGFS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fs/vfs.h"

namespace spin {
namespace fs {

class LogFs {
 public:
  // Mounts the filesystem over `prefix` (e.g. "/log/").
  LogFs(Vfs& vfs, std::string prefix);
  ~LogFs();
  LogFs(const LogFs&) = delete;
  LogFs& operator=(const LogFs&) = delete;

  const std::string& prefix() const { return prefix_; }
  size_t log_records() const { return log_.size(); }
  uint64_t compactions() const { return compactions_; }

  // Folds each file's records into a single record (the log-structured
  // cleaner).
  void Compact();

 private:
  struct Record {
    std::string path;
    uint64_t offset;
    std::vector<uint8_t> data;
    bool tombstone;
  };
  struct OpenFile {
    std::string path;
    size_t offset = 0;
    bool open = false;
  };

  // Handlers.
  static int64_t LogOpen(LogFs* fs, const char* path, int32_t flags);
  static int64_t LogRead(LogFs* fs, int64_t fd, char* buf, int64_t len);
  static int64_t LogWrite(LogFs* fs, int64_t fd, const char* buf,
                          int64_t len);
  static int64_t LogClose(LogFs* fs, int64_t fd);
  static int64_t LogRemove(LogFs* fs, const char* path);

  // Guards (one per event signature).
  static bool OpenGuard(LogFs* fs, const char* path, int32_t flags);
  static bool ReadGuard(LogFs* fs, int64_t fd, char* buf, int64_t len);
  static bool WriteGuard(LogFs* fs, int64_t fd, const char* buf,
                         int64_t len);
  static bool CloseGuard(LogFs* fs, int64_t fd);
  static bool RemoveGuard(LogFs* fs, const char* path);

  bool UnderPrefix(const char* path) const;
  bool OwnsFd(int64_t fd) const {
    return fd >= fd_base_ && fd < fd_base_ + Vfs::kMountFdRange;
  }
  // Replays the log for `path`; returns false when the file does not exist
  // (no records, or the latest is a tombstone).
  bool Materialize(const std::string& path,
                   std::vector<uint8_t>* out) const;

  Vfs& vfs_;
  std::string prefix_;
  int64_t fd_base_;
  Module module_{"LogFs"};
  std::vector<Record> log_;
  std::vector<OpenFile> fds_;
  std::vector<BindingHandle> bindings_;
  uint64_t compactions_ = 0;
};

}  // namespace fs
}  // namespace spin

#endif  // SRC_FS_LOGFS_H_
