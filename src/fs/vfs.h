// An in-memory filesystem with event-based operations.
//
// SPIN hosted "six different file systems" as extensions; file operations
// are events, so extensions can interpose. The motivating example of §2.3:
// "an extension can provide the MS-DOS file name space over a UNIX file
// system by transparently converting file names from one standard to the
// other" — a *filter* installed on the open/lookup events that rewrites the
// path argument for the handlers behind it (see examples/fs_filter.cc).
#ifndef SRC_FS_VFS_H_
#define SRC_FS_VFS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/dispatcher.h"

namespace spin {
namespace fs {

inline constexpr int64_t kErrNoEnt = -2;
inline constexpr int64_t kErrBadFd = -9;
inline constexpr int64_t kErrExists = -17;

inline constexpr int32_t kOpenCreate = 1;
inline constexpr int32_t kOpenTrunc = 2;

class Vfs {
 public:
  explicit Vfs(Dispatcher* dispatcher);

  // Events. Result < 0 is an errno-style failure. The path parameter is
  // by-value (a pointer), so filters may widen it to by-ref and substitute
  // a converted name.
  Event<int64_t(const char*, int32_t)> Open;             // -> fd
  Event<int64_t(int64_t, char*, int64_t)> Read;          // fd, buf, len -> n
  Event<int64_t(int64_t, const char*, int64_t)> Write;   // fd, buf, len -> n
  Event<int64_t(int64_t)> CloseFd;                       // fd -> 0
  Event<int64_t(const char*)> Remove;                    // path -> 0

  const Module& module() const { return module_; }
  Module& module() { return module_; }
  Dispatcher& dispatcher() { return *dispatcher_; }

  // --- Mount support ------------------------------------------------------
  //
  // "An application may provide a new in-kernel file system" (§1): a second
  // filesystem registers a path prefix and installs its own guarded
  // handlers on the same events. The base (UFS) handlers carry guards that
  // decline mounted paths and foreign fd ranges, so the filesystems compose
  // without knowing about each other.
  static constexpr int64_t kMountFdRange = 1 << 20;

  void RegisterMount(const std::string& prefix);
  void UnregisterMount(const std::string& prefix);
  bool PathMounted(const char* path) const;
  // A private fd range for a mounted filesystem.
  int64_t AllocateMountFdBase() {
    mount_fd_next_ += kMountFdRange;
    return mount_fd_next_;
  }

  // Introspection for tests.
  bool Exists(const std::string& path) const {
    return files_.count(path) > 0;
  }
  size_t file_count() const { return files_.size(); }
  uint64_t ops() const { return ops_; }

 private:
  // The UFS-style base implementation, installed as the events' handlers.
  static int64_t UfsOpen(Vfs* vfs, const char* path, int32_t flags);
  static int64_t UfsRead(Vfs* vfs, int64_t fd, char* buf, int64_t len);
  static int64_t UfsWrite(Vfs* vfs, int64_t fd, const char* buf,
                          int64_t len);
  static int64_t UfsClose(Vfs* vfs, int64_t fd);
  static int64_t UfsRemove(Vfs* vfs, const char* path);

  // Guards keeping the base implementation off mounted paths and foreign
  // fd ranges.
  static bool BaseOpenGuard(Vfs* vfs, const char* path, int32_t flags);
  static bool BaseReadGuard(Vfs* vfs, int64_t fd, char* buf, int64_t len);
  static bool BaseWriteGuard(Vfs* vfs, int64_t fd, const char* buf,
                             int64_t len);
  static bool BaseCloseGuard(Vfs* vfs, int64_t fd);
  static bool BaseRemoveGuard(Vfs* vfs, const char* path);

  struct OpenFile {
    std::string path;
    size_t offset = 0;
    bool open = false;
  };

  Module module_{"Ufs"};
  Dispatcher* dispatcher_;
  std::map<std::string, std::vector<uint8_t>> files_;
  std::vector<OpenFile> fds_;
  std::vector<std::string> mounts_;
  int64_t mount_fd_next_ = 0;
  uint64_t ops_ = 0;
};

}  // namespace fs
}  // namespace spin

#endif  // SRC_FS_VFS_H_
