#include "src/fs/vfs.h"

#include <algorithm>
#include <cstring>
#include <string_view>

namespace spin {
namespace fs {

Vfs::Vfs(Dispatcher* dispatcher)
    : Open("Fs.Open", &module_, nullptr, dispatcher),
      Read("Fs.Read", &module_, nullptr, dispatcher),
      Write("Fs.Write", &module_, nullptr, dispatcher),
      CloseFd("Fs.Close", &module_, nullptr, dispatcher),
      Remove("Fs.Remove", &module_, nullptr, dispatcher),
      dispatcher_(dispatcher) {
  // The base (UFS-style) implementation plays the intrinsic-handler role;
  // it carries the Vfs instance as a closure, so it is installed explicitly
  // rather than through the intrinsic slot. Guards decline mounted paths
  // and foreign fd ranges so mounted filesystems can coexist.
  auto open_b = dispatcher_->InstallHandler(Open, &Vfs::UfsOpen, this,
                                            {.module = &module_});
  dispatcher_->AddGuard(Open, open_b, &Vfs::BaseOpenGuard, this);
  auto read_b = dispatcher_->InstallHandler(Read, &Vfs::UfsRead, this,
                                            {.module = &module_});
  dispatcher_->AddGuard(Read, read_b, &Vfs::BaseReadGuard, this);
  auto write_b = dispatcher_->InstallHandler(Write, &Vfs::UfsWrite, this,
                                             {.module = &module_});
  dispatcher_->AddGuard(Write, write_b, &Vfs::BaseWriteGuard, this);
  auto close_b = dispatcher_->InstallHandler(CloseFd, &Vfs::UfsClose, this,
                                             {.module = &module_});
  dispatcher_->AddGuard(CloseFd, close_b, &Vfs::BaseCloseGuard, this);
  auto remove_b = dispatcher_->InstallHandler(Remove, &Vfs::UfsRemove, this,
                                              {.module = &module_});
  dispatcher_->AddGuard(Remove, remove_b, &Vfs::BaseRemoveGuard, this);

  // Operations nobody claims (a mounted prefix whose filesystem vanished,
  // an fd from a foreign range) fail with errno-style results instead of
  // NoHandlerError.
  dispatcher_->InstallDefaultHandler(
      Open, +[](const char*, int32_t) -> int64_t { return kErrNoEnt; },
      {.module = &module_});
  dispatcher_->InstallDefaultHandler(
      Read, +[](int64_t, char*, int64_t) -> int64_t { return kErrBadFd; },
      {.module = &module_});
  dispatcher_->InstallDefaultHandler(
      Write,
      +[](int64_t, const char*, int64_t) -> int64_t { return kErrBadFd; },
      {.module = &module_});
  dispatcher_->InstallDefaultHandler(
      CloseFd, +[](int64_t) -> int64_t { return kErrBadFd; },
      {.module = &module_});
  dispatcher_->InstallDefaultHandler(
      Remove, +[](const char*) -> int64_t { return kErrNoEnt; },
      {.module = &module_});
}

void Vfs::RegisterMount(const std::string& prefix) {
  mounts_.push_back(prefix);
}

void Vfs::UnregisterMount(const std::string& prefix) {
  mounts_.erase(std::remove(mounts_.begin(), mounts_.end(), prefix),
                mounts_.end());
}

bool Vfs::PathMounted(const char* path) const {
  std::string_view view(path);
  for (const std::string& prefix : mounts_) {
    if (view.substr(0, prefix.size()) == prefix) {
      return true;
    }
  }
  return false;
}

bool Vfs::BaseOpenGuard(Vfs* vfs, const char* path, int32_t) {
  return !vfs->PathMounted(path);
}
bool Vfs::BaseReadGuard(Vfs* vfs, int64_t fd, char*, int64_t) {
  (void)vfs;
  return fd < kMountFdRange;
}
bool Vfs::BaseWriteGuard(Vfs* vfs, int64_t fd, const char*, int64_t) {
  (void)vfs;
  return fd < kMountFdRange;
}
bool Vfs::BaseCloseGuard(Vfs* vfs, int64_t fd) {
  (void)vfs;
  return fd < kMountFdRange;
}
bool Vfs::BaseRemoveGuard(Vfs* vfs, const char* path) {
  return !vfs->PathMounted(path);
}

int64_t Vfs::UfsOpen(Vfs* vfs, const char* path, int32_t flags) {
  ++vfs->ops_;
  std::string name(path);
  auto it = vfs->files_.find(name);
  if (it == vfs->files_.end()) {
    if ((flags & kOpenCreate) == 0) {
      return kErrNoEnt;
    }
    vfs->files_.emplace(name, std::vector<uint8_t>());
  } else if ((flags & kOpenTrunc) != 0) {
    it->second.clear();
  }
  for (size_t fd = 0; fd < vfs->fds_.size(); ++fd) {
    if (!vfs->fds_[fd].open) {
      vfs->fds_[fd] = OpenFile{name, 0, true};
      return static_cast<int64_t>(fd);
    }
  }
  vfs->fds_.push_back(OpenFile{name, 0, true});
  return static_cast<int64_t>(vfs->fds_.size() - 1);
}

int64_t Vfs::UfsRead(Vfs* vfs, int64_t fd, char* buf, int64_t len) {
  ++vfs->ops_;
  if (fd < 0 || static_cast<size_t>(fd) >= vfs->fds_.size() ||
      !vfs->fds_[fd].open) {
    return kErrBadFd;
  }
  OpenFile& file = vfs->fds_[fd];
  const std::vector<uint8_t>& data = vfs->files_[file.path];
  size_t available = data.size() > file.offset ? data.size() - file.offset : 0;
  size_t n = std::min(available, static_cast<size_t>(len));
  std::memcpy(buf, data.data() + file.offset, n);
  file.offset += n;
  return static_cast<int64_t>(n);
}

int64_t Vfs::UfsWrite(Vfs* vfs, int64_t fd, const char* buf, int64_t len) {
  ++vfs->ops_;
  if (fd < 0 || static_cast<size_t>(fd) >= vfs->fds_.size() ||
      !vfs->fds_[fd].open) {
    return kErrBadFd;
  }
  OpenFile& file = vfs->fds_[fd];
  std::vector<uint8_t>& data = vfs->files_[file.path];
  if (data.size() < file.offset + len) {
    data.resize(file.offset + len);
  }
  std::memcpy(data.data() + file.offset, buf, len);
  file.offset += len;
  return len;
}

int64_t Vfs::UfsClose(Vfs* vfs, int64_t fd) {
  ++vfs->ops_;
  if (fd < 0 || static_cast<size_t>(fd) >= vfs->fds_.size() ||
      !vfs->fds_[fd].open) {
    return kErrBadFd;
  }
  vfs->fds_[fd].open = false;
  return 0;
}

int64_t Vfs::UfsRemove(Vfs* vfs, const char* path) {
  ++vfs->ops_;
  return vfs->files_.erase(std::string(path)) > 0 ? 0 : kErrNoEnt;
}

}  // namespace fs
}  // namespace spin
