#include "src/fs/logfs.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <string_view>

namespace spin {
namespace fs {

LogFs::LogFs(Vfs& vfs, std::string prefix)
    : vfs_(vfs),
      prefix_(std::move(prefix)),
      fd_base_(vfs.AllocateMountFdBase()) {
  vfs_.RegisterMount(prefix_);
  Dispatcher& d = vfs_.dispatcher();
  auto open_b = d.InstallHandler(vfs_.Open, &LogFs::LogOpen, this,
                                 {.module = &module_});
  d.AddGuard(vfs_.Open, open_b, &LogFs::OpenGuard, this);
  auto read_b = d.InstallHandler(vfs_.Read, &LogFs::LogRead, this,
                                 {.module = &module_});
  d.AddGuard(vfs_.Read, read_b, &LogFs::ReadGuard, this);
  auto write_b = d.InstallHandler(vfs_.Write, &LogFs::LogWrite, this,
                                  {.module = &module_});
  d.AddGuard(vfs_.Write, write_b, &LogFs::WriteGuard, this);
  auto close_b = d.InstallHandler(vfs_.CloseFd, &LogFs::LogClose, this,
                                  {.module = &module_});
  d.AddGuard(vfs_.CloseFd, close_b, &LogFs::CloseGuard, this);
  auto remove_b = d.InstallHandler(vfs_.Remove, &LogFs::LogRemove, this,
                                   {.module = &module_});
  d.AddGuard(vfs_.Remove, remove_b, &LogFs::RemoveGuard, this);
  bindings_ = {open_b, read_b, write_b, close_b, remove_b};
}

LogFs::~LogFs() {
  vfs_.UnregisterMount(prefix_);
  for (const BindingHandle& binding : bindings_) {
    if (binding->active.load()) {
      vfs_.dispatcher().Uninstall(binding, &module_);
    }
  }
}

bool LogFs::UnderPrefix(const char* path) const {
  return std::string_view(path).substr(0, prefix_.size()) == prefix_;
}

bool LogFs::OpenGuard(LogFs* fs, const char* path, int32_t) {
  return fs->UnderPrefix(path);
}
bool LogFs::ReadGuard(LogFs* fs, int64_t fd, char*, int64_t) {
  return fs->OwnsFd(fd);
}
bool LogFs::WriteGuard(LogFs* fs, int64_t fd, const char*, int64_t) {
  return fs->OwnsFd(fd);
}
bool LogFs::CloseGuard(LogFs* fs, int64_t fd) { return fs->OwnsFd(fd); }
bool LogFs::RemoveGuard(LogFs* fs, const char* path) {
  return fs->UnderPrefix(path);
}

bool LogFs::Materialize(const std::string& path,
                        std::vector<uint8_t>* out) const {
  bool exists = false;
  out->clear();
  for (const Record& record : log_) {
    if (record.path != path) {
      continue;
    }
    if (record.tombstone) {
      exists = false;
      out->clear();
      continue;
    }
    exists = true;
    if (out->size() < record.offset + record.data.size()) {
      out->resize(record.offset + record.data.size());
    }
    std::memcpy(out->data() + record.offset, record.data.data(),
                record.data.size());
  }
  return exists;
}

int64_t LogFs::LogOpen(LogFs* fs, const char* path, int32_t flags) {
  std::string name(path);
  std::vector<uint8_t> content;
  bool exists = fs->Materialize(name, &content);
  if (!exists) {
    if ((flags & kOpenCreate) == 0) {
      return kErrNoEnt;
    }
    fs->log_.push_back(Record{name, 0, {}, false});
  } else if ((flags & kOpenTrunc) != 0) {
    fs->log_.push_back(Record{name, 0, {}, true});   // drop old contents
    fs->log_.push_back(Record{name, 0, {}, false});  // recreate empty
  }
  for (size_t i = 0; i < fs->fds_.size(); ++i) {
    if (!fs->fds_[i].open) {
      fs->fds_[i] = OpenFile{name, 0, true};
      return fs->fd_base_ + static_cast<int64_t>(i);
    }
  }
  fs->fds_.push_back(OpenFile{name, 0, true});
  return fs->fd_base_ + static_cast<int64_t>(fs->fds_.size() - 1);
}

int64_t LogFs::LogRead(LogFs* fs, int64_t fd, char* buf, int64_t len) {
  size_t slot = static_cast<size_t>(fd - fs->fd_base_);
  if (slot >= fs->fds_.size() || !fs->fds_[slot].open) {
    return kErrBadFd;
  }
  OpenFile& file = fs->fds_[slot];
  std::vector<uint8_t> content;
  if (!fs->Materialize(file.path, &content)) {
    return kErrNoEnt;
  }
  size_t available =
      content.size() > file.offset ? content.size() - file.offset : 0;
  size_t n = std::min(available, static_cast<size_t>(len));
  std::memcpy(buf, content.data() + file.offset, n);
  file.offset += n;
  return static_cast<int64_t>(n);
}

int64_t LogFs::LogWrite(LogFs* fs, int64_t fd, const char* buf,
                        int64_t len) {
  size_t slot = static_cast<size_t>(fd - fs->fd_base_);
  if (slot >= fs->fds_.size() || !fs->fds_[slot].open) {
    return kErrBadFd;
  }
  OpenFile& file = fs->fds_[slot];
  Record record;
  record.path = file.path;
  record.offset = file.offset;
  record.data.assign(buf, buf + len);
  record.tombstone = false;
  fs->log_.push_back(std::move(record));
  file.offset += static_cast<size_t>(len);
  return len;
}

int64_t LogFs::LogClose(LogFs* fs, int64_t fd) {
  size_t slot = static_cast<size_t>(fd - fs->fd_base_);
  if (slot >= fs->fds_.size() || !fs->fds_[slot].open) {
    return kErrBadFd;
  }
  fs->fds_[slot].open = false;
  return 0;
}

int64_t LogFs::LogRemove(LogFs* fs, const char* path) {
  std::string name(path);
  std::vector<uint8_t> content;
  if (!fs->Materialize(name, &content)) {
    return kErrNoEnt;
  }
  fs->log_.push_back(Record{name, 0, {}, true});
  return 0;
}

void LogFs::Compact() {
  ++compactions_;
  // Materialize every live file, then rebuild the log with one record per
  // file.
  std::map<std::string, std::vector<uint8_t>> live;
  for (const Record& record : log_) {
    if (record.tombstone) {
      live.erase(record.path);
      continue;
    }
    std::vector<uint8_t>& content = live[record.path];
    if (content.size() < record.offset + record.data.size()) {
      content.resize(record.offset + record.data.size());
    }
    std::memcpy(content.data() + record.offset, record.data.data(),
                record.data.size());
  }
  log_.clear();
  for (auto& [path, content] : live) {
    log_.push_back(Record{path, 0, std::move(content), false});
  }
}

}  // namespace fs
}  // namespace spin
