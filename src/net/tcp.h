// A lightweight TCP endpoint over the event-driven stack.
//
// Enough machinery to carry the Table 3 workload (a multi-megabyte stream
// of page images between the ghostview client and the X11 server): 3-way
// handshake, sequenced data segments, cumulative pure ACKs, FIN teardown.
//
// Loss recovery is not part of the endpoint: it is a pluggable *stack*
// (src/net/stacks/) bound through the dispatcher. UseStack() installs the
// named stack's handlers on the owning Host's per-connection events
// (Tcp.SegmentOut, Tcp.AckIn, Tcp.Timer), guarded on this connection, and
// from then on every send/ack/timer decision is delegated to the stack.
// Calling UseStack() again hot-swaps the policy mid-flight — the install
// runs through the host's §2.5 authorizer, and a denial leaves the old
// stack bound. EnableRetransmit() survives as a shim that binds
// "stop_and_wait", the original go-back-N behavior.
#ifndef SRC_NET_TCP_H_
#define SRC_NET_TCP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/net/host.h"
#include "src/net/stacks/tcp_stack.h"
#include "src/sim/simulator.h"

namespace spin {
namespace net {

class TcpEndpoint : private TcpStackDriver {
 public:
  using DataFn = std::function<void(const std::string&)>;

  TcpEndpoint(Host& host, uint16_t local_port);
  ~TcpEndpoint() override;
  TcpEndpoint(const TcpEndpoint&) = delete;
  TcpEndpoint& operator=(const TcpEndpoint&) = delete;

  enum class State : uint8_t {
    kClosed,
    kListen,
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinWait,
    kCloseWait,
    kDead,  // retry budget exhausted; the connection failed
  };

  // Passive open.
  void Listen(DataFn on_data);
  // Active open: emits SYN; the connection establishes as the simulator
  // delivers the handshake. With a stack bound, the SYN itself is
  // retransmitted on the shared backoff schedule until answered.
  void Connect(uint32_t dst_ip, uint16_t dst_port, DataFn on_data);
  // Hands `data` to the bound stack (which segments it subject to its
  // window) or, with no stack bound, blasts MSS-sized segments
  // immediately with no recovery (the paper's idle-LAN assumption).
  void Send(const std::string& data);
  void Close();

  State state() const { return state_; }
  bool established() const { return state_ == State::kEstablished; }
  bool dead() const { return state_ == State::kDead; }
  uint64_t bytes_received() const { return bytes_received_; }
  uint64_t segments_sent() const { return segments_sent_; }
  uint64_t segments_received() const { return segments_received_; }
  uint64_t retransmissions() const { return retransmissions_; }

  // Binds the named stack (stop_and_wait / reno / rack_lite / anything
  // registered) to this connection, replacing the current one. The
  // installs carry `credentials` and a module identity of
  // "TcpStack.<name>#<conn id>" through the host's §2.5 authorizer; on
  // denial (or
  // an unknown name) returns false and the incumbent stack keeps serving
  // — in-flight data is never dropped either way, because all transfer
  // state lives in the swap-stable TcpConn block. `rto_ns` seeds the
  // retransmission timer on the simulator's virtual clock.
  bool UseStack(sim::Simulator* sim, const std::string& name,
                uint64_t rto_ns, void* credentials = nullptr);
  const std::string& stack_name() const { return stack_name_; }

  // The per-connection state block (raise-source id, flight, window).
  const TcpConn& conn() const { return conn_; }
  uint64_t conn_id() const { return conn_.id; }

  // Caps the consecutive unanswered retransmission rounds before the
  // connection aborts to kDead.
  void SetMaxRetries(uint32_t max_retries) {
    conn_.max_retries = max_retries;
  }

  // Legacy spelling: binds the stop_and_wait stack (go-back-N on RTO,
  // now with exponential backoff and a retry budget).
  void EnableRetransmit(sim::Simulator* sim, uint64_t timeout_ns);

 private:
  static bool Input(TcpEndpoint* endpoint, Packet* packet);

  // Stack-event handlers (installed per bound stack, guarded on conn_).
  static void StackSegmentOut(TcpEndpoint* endpoint, TcpConn* conn);
  static void StackAckIn(TcpEndpoint* endpoint, TcpConn* conn,
                         uint64_t ack);
  static void StackTimer(TcpEndpoint* endpoint, TcpConn* conn);
  static bool ConnGuard(TcpConn* mine, TcpConn* conn);
  static bool ConnGuardAck(TcpConn* mine, TcpConn* conn, uint64_t ack);

  // TcpStackDriver (the mechanics the bound stack drives).
  void SendNewSegment(TcpConn& conn, const std::string& payload) override;
  void Retransmit(TcpConn& conn, TcpSegment& segment) override;
  void Abort(TcpConn& conn) override;

  void Emit(uint8_t flags, const std::string& payload);
  void EmitRaw(uint32_t seq, uint8_t flags, const std::string& payload);
  void Established();
  void RaiseSegmentOut();
  void ScheduleTimer();
  void TimerFired();
  void DropStackBindings();

  Host& host_;
  uint16_t local_port_;
  uint32_t remote_ip_ = 0;
  uint16_t remote_port_ = 0;
  State state_ = State::kClosed;
  uint32_t snd_next_ = 0;  // next sequence number to send
  uint32_t rcv_next_ = 0;  // next sequence number expected
  uint32_t iss_ = 0;       // initial send sequence (handshake retransmit)
  DataFn on_data_;
  BindingHandle binding_;
  uint64_t bytes_received_ = 0;
  uint64_t segments_sent_ = 0;
  uint64_t segments_received_ = 0;
  uint64_t retransmissions_ = 0;

  // Stack binding state.
  TcpConn conn_;
  std::unique_ptr<TcpStack> stack_;
  std::unique_ptr<Module> stack_module_;
  std::string stack_name_;
  BindingHandle stack_bindings_[3];

  // Retransmission timer: one deadline in conn_, lazily reprogrammed
  // against the simulator. The alive token parries callbacks that
  // outlive the endpoint.
  bool timer_pending_ = false;
  uint64_t timer_wake_ns_ = 0;
  std::shared_ptr<TcpEndpoint*> alive_;
};

}  // namespace net
}  // namespace spin

#endif  // SRC_NET_TCP_H_
