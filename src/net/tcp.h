// A lightweight TCP endpoint over the event-driven stack.
//
// Enough machinery to carry the Table 3 workload (a multi-megabyte stream
// of page images between the ghostview client and the X11 server): 3-way
// handshake, sequenced data segments, cumulative pure ACKs, FIN teardown.
// The paper's testbed ran on an idle LAN, so loss handling is optional:
// EnableRetransmit() arms go-back-N retransmission driven by the
// simulator's virtual clock, for lossy-wire experiments and tests.
#ifndef SRC_NET_TCP_H_
#define SRC_NET_TCP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/net/host.h"
#include "src/sim/simulator.h"

namespace spin {
namespace net {

inline constexpr size_t kTcpMss = 1460;

class TcpEndpoint {
 public:
  using DataFn = std::function<void(const std::string&)>;

  TcpEndpoint(Host& host, uint16_t local_port);
  ~TcpEndpoint();
  TcpEndpoint(const TcpEndpoint&) = delete;
  TcpEndpoint& operator=(const TcpEndpoint&) = delete;

  enum class State : uint8_t {
    kClosed,
    kListen,
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinWait,
    kCloseWait,
  };

  // Passive open.
  void Listen(DataFn on_data);
  // Active open: emits SYN; the connection establishes as the simulator
  // delivers the handshake.
  void Connect(uint32_t dst_ip, uint16_t dst_port, DataFn on_data);
  // Segments `data` into MSS-sized packets.
  void Send(const std::string& data);
  void Close();

  State state() const { return state_; }
  bool established() const { return state_ == State::kEstablished; }
  uint64_t bytes_received() const { return bytes_received_; }
  uint64_t segments_sent() const { return segments_sent_; }
  uint64_t segments_received() const { return segments_received_; }
  uint64_t retransmissions() const { return retransmissions_; }

  // Arms go-back-N retransmission: data segments unacknowledged for
  // `timeout_ns` of virtual time are resent (all outstanding, in order).
  void EnableRetransmit(sim::Simulator* sim, uint64_t timeout_ns);

 private:
  struct Unacked {
    uint32_t seq;
    std::string payload;
    uint64_t sent_at_ns;
  };

  static bool Input(TcpEndpoint* endpoint, Packet* packet);
  void Emit(uint8_t flags, const std::string& payload);
  void TrackSent(uint32_t seq, const std::string& payload);
  void OnAck(uint32_t ack);
  void ArmTimer();
  void RetransmitCheck();

  Host& host_;
  uint16_t local_port_;
  uint32_t remote_ip_ = 0;
  uint16_t remote_port_ = 0;
  State state_ = State::kClosed;
  uint32_t snd_next_ = 0;  // next sequence number to send
  uint32_t rcv_next_ = 0;  // next sequence number expected
  DataFn on_data_;
  BindingHandle binding_;
  uint64_t bytes_received_ = 0;
  uint64_t segments_sent_ = 0;
  uint64_t segments_received_ = 0;

  // Retransmission state.
  sim::Simulator* sim_ = nullptr;
  uint64_t rto_ns_ = 0;
  bool timer_armed_ = false;
  std::deque<Unacked> unacked_;
  uint64_t retransmissions_ = 0;
};

}  // namespace net
}  // namespace spin

#endif  // SRC_NET_TCP_H_
