// stop_and_wait: the endpoint's original hardwired behavior, extracted.
//
// No congestion window — every pending byte is blasted as soon as the
// application hands it over — and the only loss signal is the
// retransmission timeout, answered with go-back-N (resend the entire
// flight; the receiver's cumulative ACK discards what it already holds).
// Duplicate ACKs are ignored, so every loss costs a full RTO. What this
// stack adds over the legacy path is the retry budget: each unanswered
// RTO round doubles the deadline, and after max_retries rounds the
// connection aborts instead of spinning forever (the fleet workload
// needs partitioned connections to *fail*).
#include "src/net/stacks/tcp_stack.h"

namespace spin {
namespace net {
namespace {

class StopAndWaitStack : public TcpStack {
 public:
  const char* name() const override { return "stop_and_wait"; }

  void OnBind(TcpConn& conn) override {
    conn.cwnd_bytes = 0;  // unlimited
    conn.in_recovery = false;
    conn.dup_acks = 0;
  }

  void OnSendReady(TcpConn& conn) override { PumpPending(conn); }

  void OnAck(TcpConn& conn, uint32_t ack) override {
    AckAdvance(conn, ack);
    PumpPending(conn);
  }

  void OnTimer(TcpConn& conn, uint64_t now_ns) override {
    if (conn.flight.empty()) {
      return;
    }
    if (++conn.backoff > conn.max_retries) {
      conn.driver->Abort(conn);
      return;
    }
    for (TcpSegment& segment : conn.flight) {
      conn.driver->Retransmit(conn, segment);
    }
    RestartTimer(conn, now_ns);
  }
};

}  // namespace

std::unique_ptr<TcpStack> MakeStopAndWaitStack() {
  return std::make_unique<StopAndWaitStack>();
}

}  // namespace net
}  // namespace spin
