// rack_lite: time-ordered loss detection with reordering tolerance.
//
// The trimmed-down shape of FreeBSD/Linux RACK: instead of counting
// duplicate ACKs, a segment is deemed lost when a segment sent *after* it
// has already been cumulatively acknowledged and more than a reordering
// window (reo_wnd = RTO/8) has elapsed beyond its own send time. That
// makes detection a property of delivery *time order*, so a transient
// reordering shorter than reo_wnd never triggers a spurious
// retransmission, while a real hole is repaired after ~reo_wnd instead
// of a full RTO. Duplicate ACKs still feed an early-retransmit path
// (two dup-ACKs + the front segment older than reo_wnd), which covers
// holes that keep drawing dup-ACKs before any newer delivery lands.
// Window management mirrors reno (slow start / congestion avoidance /
// halve once per recovery episode); the RTO path resends the flight
// go-back-N with exponential backoff and the shared retry budget.
#include "src/net/stacks/tcp_stack.h"

#include <algorithm>

namespace spin {
namespace net {
namespace {

constexpr size_t kInitialWindow = 10 * kTcpMss;
constexpr uint32_t kEarlyRetransmitDupAcks = 2;

size_t HalvedWindow(const TcpConn& conn) {
  return std::max(conn.flight_bytes / 2, 2 * kTcpMss);
}

uint32_t FlightEnd(const TcpConn& conn) {
  if (conn.flight.empty()) {
    return conn.snd_una;
  }
  const TcpSegment& back = conn.flight.back();
  return back.seq + static_cast<uint32_t>(back.payload.size());
}

uint64_t ReorderWindow(const TcpConn& conn) {
  return std::max<uint64_t>(conn.rto_ns / 8, 1);
}

class RackLiteStack : public TcpStack {
 public:
  const char* name() const override { return "rack_lite"; }

  void OnBind(TcpConn& conn) override {
    if (conn.cwnd_bytes == 0) {
      conn.cwnd_bytes = kInitialWindow;
      conn.ssthresh_bytes = ~size_t{0};
    }
  }

  void OnSendReady(TcpConn& conn) override { PumpPending(conn); }

  void OnAck(TcpConn& conn, uint32_t ack) override {
    const uint64_t reo_wnd = ReorderWindow(conn);
    if (ack > conn.snd_una) {
      AckResult result = AckAdvance(conn, ack);
      conn.rack_newest_ns =
          std::max(conn.rack_newest_ns, result.newest_sent_at_ns);
      if (conn.in_recovery && ack >= conn.recover_seq) {
        conn.in_recovery = false;
      }
      Grow(conn, result.acked_bytes);
      DetectByTime(conn, reo_wnd);
      PumpPending(conn);
      return;
    }
    if (conn.flight.empty()) {
      return;
    }
    ++conn.dup_acks;
    // Early retransmit: repeated dup-ACKs against a front segment that has
    // outlived the reordering window. Fewer dup-ACKs than reno needs, but
    // never before reo_wnd — that is the reordering tolerance.
    if (conn.dup_acks >= kEarlyRetransmitDupAcks && conn.sim != nullptr &&
        conn.sim->now_ns() >=
            conn.flight.front().sent_at_ns + reo_wnd) {
      EnterRecovery(conn);
      for (TcpSegment& segment : conn.flight) {
        conn.driver->Retransmit(conn, segment);
      }
      conn.dup_acks = 0;
      RestartTimer(conn, conn.sim->now_ns());
    }
  }

  void OnTimer(TcpConn& conn, uint64_t now_ns) override {
    if (conn.flight.empty()) {
      return;
    }
    if (++conn.backoff > conn.max_retries) {
      conn.driver->Abort(conn);
      return;
    }
    // Go-back-N on RTO, same as reno: the receiver kept nothing behind
    // the hole, so the whole flight must go again; the window collapse
    // only throttles *new* data.
    conn.ssthresh_bytes = HalvedWindow(conn);
    conn.cwnd_bytes = kTcpMss;
    conn.in_recovery = false;
    conn.dup_acks = 0;
    for (TcpSegment& segment : conn.flight) {
      conn.driver->Retransmit(conn, segment);
    }
    RestartTimer(conn, now_ns);
  }

 private:
  // Time-ordered detection: anything still in flight that was sent more
  // than reo_wnd before the newest delivered segment cannot merely be
  // reordered — it is lost. And because the receiver holds no
  // out-of-order data, a detected hole invalidates the whole flight
  // behind it: repair is go-back-N from the front.
  void DetectByTime(TcpConn& conn, uint64_t reo_wnd) {
    if (conn.rack_newest_ns == 0) {
      return;
    }
    bool lost = false;
    for (const TcpSegment& segment : conn.flight) {
      if (segment.sent_at_ns + reo_wnd <= conn.rack_newest_ns) {
        lost = true;
        break;
      }
    }
    if (!lost) {
      return;
    }
    EnterRecovery(conn);
    for (TcpSegment& segment : conn.flight) {
      conn.driver->Retransmit(conn, segment);
    }
    if (conn.sim != nullptr) {
      RestartTimer(conn, conn.sim->now_ns());
    }
  }

  void EnterRecovery(TcpConn& conn) {
    if (conn.in_recovery) {
      return;
    }
    conn.in_recovery = true;
    conn.recover_seq = FlightEnd(conn);
    conn.ssthresh_bytes = HalvedWindow(conn);
    conn.cwnd_bytes = conn.ssthresh_bytes;
  }

  static void Grow(TcpConn& conn, size_t acked_bytes) {
    if (conn.in_recovery || acked_bytes == 0) {
      return;
    }
    if (conn.cwnd_bytes < conn.ssthresh_bytes) {
      conn.cwnd_bytes += acked_bytes;
    } else {
      conn.cwnd_bytes +=
          std::max<size_t>(kTcpMss * kTcpMss / conn.cwnd_bytes, 1);
    }
  }
};

}  // namespace

std::unique_ptr<TcpStack> MakeRackLiteStack() {
  return std::make_unique<RackLiteStack>();
}

}  // namespace net
}  // namespace spin
