#include "src/net/stacks/tcp_stack.h"

#include <algorithm>

#include "src/rt/panic.h"

namespace spin {
namespace net {

size_t StackWindowAvail(const TcpConn& conn) {
  if (conn.cwnd_bytes == 0) {
    return ~size_t{0};
  }
  return conn.cwnd_bytes > conn.flight_bytes
             ? conn.cwnd_bytes - conn.flight_bytes
             : 0;
}

void PumpPending(TcpConn& conn) {
  SPIN_ASSERT(conn.driver != nullptr);
  while (conn.pending_off < conn.pending.size()) {
    size_t remaining = conn.pending.size() - conn.pending_off;
    size_t chunk = std::min(kTcpMss, remaining);
    // A closed window with an empty flight would never reopen (ACKs are
    // what grow it), so an empty flight always admits one segment.
    if (!conn.flight.empty() && chunk > StackWindowAvail(conn)) {
      break;
    }
    conn.driver->SendNewSegment(conn,
                                conn.pending.substr(conn.pending_off, chunk));
    conn.pending_off += chunk;
  }
  if (conn.pending_off >= conn.pending.size()) {
    conn.pending.clear();
    conn.pending_off = 0;
  }
}

AckResult AckAdvance(TcpConn& conn, uint32_t ack) {
  AckResult result;
  while (!conn.flight.empty()) {
    const TcpSegment& front = conn.flight.front();
    uint32_t end = front.seq + static_cast<uint32_t>(front.payload.size());
    if (end > ack) {
      break;
    }
    result.acked_bytes += front.payload.size();
    result.newest_sent_at_ns =
        std::max(result.newest_sent_at_ns, front.sent_at_ns);
    conn.flight_bytes -= front.payload.size();
    conn.flight.pop_front();
  }
  if (ack > conn.snd_una) {
    conn.snd_una = ack;
    result.progress = true;
    conn.dup_acks = 0;
    conn.backoff = 0;
    if (conn.sim != nullptr) {
      RestartTimer(conn, conn.sim->now_ns());
    }
  }
  return result;
}

void RestartTimer(TcpConn& conn, uint64_t now_ns) {
  if (conn.flight.empty()) {
    conn.timer_deadline_ns = 0;
    return;
  }
  uint32_t shift = std::min(conn.backoff, 16u);
  conn.timer_deadline_ns = now_ns + (conn.rto_ns << shift);
}

TcpStackRegistry& TcpStackRegistry::Global() {
  static TcpStackRegistry registry;
  return registry;
}

void TcpStackRegistry::Register(const std::string& name, Factory factory) {
  for (auto& entry : factories_) {
    if (entry.first == name) {
      entry.second = factory;
      return;
    }
  }
  factories_.emplace_back(name, factory);
}

std::unique_ptr<TcpStack> TcpStackRegistry::Create(
    const std::string& name) const {
  for (const auto& entry : factories_) {
    if (entry.first == name) {
      return entry.second();
    }
  }
  return nullptr;
}

std::vector<std::string> TcpStackRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& entry : factories_) {
    names.push_back(entry.first);
  }
  return names;
}

void RegisterBuiltinTcpStacks() {
  static const bool registered = [] {
    TcpStackRegistry& registry = TcpStackRegistry::Global();
    registry.Register("stop_and_wait", &MakeStopAndWaitStack);
    registry.Register("reno", &MakeRenoStack);
    registry.Register("rack_lite", &MakeRackLiteStack);
    return true;
  }();
  (void)registered;
}

StackAuthorizer::StackAuthorizer(std::vector<std::string> allowed)
    : allowed_(std::move(allowed)) {}

void StackAuthorizer::Attach(Host& host) {
  Dispatcher& dispatcher = host.dispatcher();
  for (EventBase* event : {static_cast<EventBase*>(&host.TcpSegmentOut),
                           static_cast<EventBase*>(&host.TcpAckIn),
                           static_cast<EventBase*>(&host.TcpTimer)}) {
    dispatcher.InstallAuthorizer(*event, &StackAuthorizer::Authorize, this,
                                 host.module());
  }
}

bool StackAuthorizer::Authorize(AuthRequest& request, void* ctx) {
  auto* self = static_cast<StackAuthorizer*>(ctx);
  if (request.op != AuthOp::kInstall || request.requestor == nullptr) {
    return true;  // uninstalls, defaults, guards: always permitted
  }
  const std::string& module_name = request.requestor->name();
  constexpr char kPrefix[] = "TcpStack.";
  if (module_name.rfind(kPrefix, 0) != 0) {
    return true;  // not a stack binding; out of this authorizer's scope
  }
  // Module names are "TcpStack.<stack>#<conn id>"; policy is per stack.
  std::string stack = module_name.substr(sizeof(kPrefix) - 1);
  size_t hash = stack.find('#');
  if (hash != std::string::npos) {
    stack.resize(hash);
  }
  for (const std::string& name : self->allowed_) {
    if (name == stack) {
      ++self->granted_;
      return true;
    }
  }
  ++self->denied_;
  return false;
}

}  // namespace net
}  // namespace spin
