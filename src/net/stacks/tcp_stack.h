// Pluggable TCP stacks bound through the dispatcher (ROADMAP: the paper's
// thesis at fleet scale).
//
// Congestion control and loss recovery are not hardwired into TcpEndpoint;
// they are a *stack* — an object implementing this interface — bound to the
// connection by installing guarded handlers on the owning Host's
// per-connection events (Tcp.SegmentOut, Tcp.AckIn, Tcp.Timer). Selecting
// a stack is a guarded install; swapping one at runtime is an
// uninstall/install pair that runs through the event owner's §2.5
// authorizer, so policy can pin a fleet to an allow-list of stacks and a
// denied swap leaves the old stack serving traffic. This is the shape
// FreeBSD ships as pluggable TCP stacks (tcp_stacks/rack.c, bbr.c),
// rebuilt on dynamic binding.
//
// The split of responsibilities:
//   - TcpEndpoint owns the protocol state machine (handshake, teardown,
//     sequence numbers, receive path) and the mechanics of emitting
//     segments. It keeps a TcpConn block and raises the three events.
//   - The bound TcpStack makes every send/ack/timer *decision*: when to
//     transmit pending data (window management), how to react to an ACK
//     (cwnd growth, duplicate-ACK counting, loss detection), and what a
//     retransmission timeout means (backoff, go-back-N, abort).
//   - All mutable decision state lives in TcpConn, not in the stack
//     object, so a hot-swap hands the successor the connection mid-flight:
//     in-flight segments stay tracked and the byte stream never skips.
#ifndef SRC_NET_STACKS_TCP_STACK_H_
#define SRC_NET_STACKS_TCP_STACK_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/net/host.h"
#include "src/sim/simulator.h"

namespace spin {
namespace net {

// One tracked data segment in flight.
struct TcpSegment {
  uint32_t seq = 0;
  std::string payload;
  uint64_t sent_at_ns = 0;     // virtual time of the latest (re)transmission
  uint32_t transmissions = 1;  // 1 = original send only
};

struct TcpConn;

// The endpoint-side mechanics a stack drives. TcpEndpoint implements this;
// tests implement it with a mock to unit-test stacks without a network.
class TcpStackDriver {
 public:
  virtual ~TcpStackDriver() = default;
  // Emit a brand-new segment carrying `payload` at the connection's next
  // sequence number and track it in conn.flight.
  virtual void SendNewSegment(TcpConn& conn, const std::string& payload) = 0;
  // Re-emit an already-tracked flight segment (counts a retransmission and
  // restamps sent_at_ns).
  virtual void Retransmit(TcpConn& conn, TcpSegment& segment) = 0;
  // Retry budget exhausted: the connection is dead.
  virtual void Abort(TcpConn& conn) = 0;
};

// Per-connection state shared between the endpoint and whichever stack is
// currently bound. Deliberately swap-stable: nothing in here belongs to a
// particular stack implementation, so replacing the stack object preserves
// the connection (flight, window, retry budget) exactly.
struct TcpConn {
  uint64_t id = 0;  // raise-source id (SourceKind::kConnection)
  TcpStackDriver* driver = nullptr;
  sim::Simulator* sim = nullptr;

  // Send buffer: bytes accepted from the application but not yet
  // segmented onto the wire. pending_off marks the consumed prefix.
  std::string pending;
  size_t pending_off = 0;

  // Retransmission queue (send order == sequence order).
  std::deque<TcpSegment> flight;
  size_t flight_bytes = 0;
  uint32_t snd_una = 0;  // oldest unacknowledged sequence number

  // Window / recovery state, maintained by the bound stack.
  size_t cwnd_bytes = 0;  // 0 = unlimited (no congestion window)
  size_t ssthresh_bytes = ~size_t{0};
  uint32_t dup_acks = 0;
  bool in_recovery = false;
  uint32_t recover_seq = 0;        // recovery ends once snd_una passes this
  uint64_t rack_newest_ns = 0;     // newest delivered segment's send time

  // Timer / retry budget, shared by every stack and the handshake.
  uint64_t rto_ns = 0;
  uint32_t backoff = 0;     // consecutive unanswered RTO rounds
  uint32_t max_retries = 8;
  uint64_t timer_deadline_ns = 0;  // 0 = timer idle
};

// A congestion-control / loss-recovery policy. Instances are created per
// connection through TcpStackRegistry and own no connection state.
class TcpStack {
 public:
  virtual ~TcpStack() = default;
  virtual const char* name() const = 0;
  // The stack was just bound (fresh connection or hot-swap): initialize or
  // adopt the window state in `conn`.
  virtual void OnBind(TcpConn& conn) = 0;
  // Tcp.SegmentOut: the application appended data to conn.pending;
  // segment and transmit whatever the window allows.
  virtual void OnSendReady(TcpConn& conn) = 0;
  // Tcp.AckIn: a cumulative ACK for `ack` arrived.
  virtual void OnAck(TcpConn& conn, uint32_t ack) = 0;
  // Tcp.Timer: the retransmission deadline expired at `now_ns`.
  virtual void OnTimer(TcpConn& conn, uint64_t now_ns) = 0;
};

// --- Shared helpers (the mechanics every stack composes) -------------------

// Bytes the window still admits (SIZE_MAX when cwnd is unlimited).
size_t StackWindowAvail(const TcpConn& conn);

// Segment conn.pending into MSS-sized sends up to the window. An empty
// flight always admits one segment, so a tiny window cannot deadlock.
void PumpPending(TcpConn& conn);

// Cumulative-ACK bookkeeping: trims fully-acknowledged segments off the
// flight. On forward progress resets dup_acks and the retry backoff and
// restarts (or clears) the retransmission deadline.
struct AckResult {
  size_t acked_bytes = 0;
  uint64_t newest_sent_at_ns = 0;  // latest send time among acked segments
  bool progress = false;           // ack advanced snd_una
};
AckResult AckAdvance(TcpConn& conn, uint32_t ack);

// Restart the retransmission deadline from now, honoring the current
// exponential backoff. Clears it when nothing is in flight.
void RestartTimer(TcpConn& conn, uint64_t now_ns);

// --- Registry --------------------------------------------------------------

class TcpStackRegistry {
 public:
  using Factory = std::unique_ptr<TcpStack> (*)();

  static TcpStackRegistry& Global();

  void Register(const std::string& name, Factory factory);
  // nullptr when no stack registered under `name`.
  std::unique_ptr<TcpStack> Create(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::vector<std::pair<std::string, Factory>> factories_;
};

// The built-in stack factories (also reachable through the registry).
std::unique_ptr<TcpStack> MakeStopAndWaitStack();
std::unique_ptr<TcpStack> MakeRenoStack();
std::unique_ptr<TcpStack> MakeRackLiteStack();

// Registers stop_and_wait, reno, and rack_lite (idempotent). Called from
// every entry point that resolves stacks by name, so a static-archive link
// cannot dead-strip the implementations.
void RegisterBuiltinTcpStacks();

// --- §2.5 policy over stack selection --------------------------------------

// An authorizer for a Host's three per-connection stack events: installs
// from a module named "TcpStack.<name>#<conn id>" are granted iff <name>
// is on the allow list. Everything else (uninstalls of the outgoing stack, the
// host's own defaults) passes, so a denied swap leaves the old stack
// bound and serving. Attach() requires authority over the events — the
// host's own module — exactly like any §2.5 authorizer install.
class StackAuthorizer {
 public:
  explicit StackAuthorizer(std::vector<std::string> allowed);

  void Attach(Host& host);

  void Allow(const std::string& name) { allowed_.push_back(name); }
  uint64_t denied() const { return denied_; }
  uint64_t granted() const { return granted_; }

 private:
  static bool Authorize(AuthRequest& request, void* ctx);

  std::vector<std::string> allowed_;
  uint64_t denied_ = 0;
  uint64_t granted_ = 0;
};

}  // namespace net
}  // namespace spin

#endif  // SRC_NET_STACKS_TCP_STACK_H_
