// reno: slow start, congestion avoidance, fast retransmit on 3 dup-ACKs.
//
// The receiver in this codebase delivers strictly in order and discards
// out-of-order segments (no reassembly queue), so recovery is go-back-N:
// on the third duplicate ACK the whole flight is resent — the hole plus
// everything the receiver threw away behind it — and the window halves.
// That makes this Reno-without-SACK: the fast-retransmit *trigger*
// (three dup-ACKs, ~1 RTT) is what distinguishes it from stop_and_wait's
// RTO-only recovery, which is the entire point at 5% loss.
#include "src/net/stacks/tcp_stack.h"

#include <algorithm>

namespace spin {
namespace net {
namespace {

constexpr size_t kInitialWindow = 10 * kTcpMss;
constexpr uint32_t kDupAckThreshold = 3;

size_t HalvedWindow(const TcpConn& conn) {
  return std::max(conn.flight_bytes / 2, 2 * kTcpMss);
}

uint32_t FlightEnd(const TcpConn& conn) {
  if (conn.flight.empty()) {
    return conn.snd_una;
  }
  const TcpSegment& back = conn.flight.back();
  return back.seq + static_cast<uint32_t>(back.payload.size());
}

class RenoStack : public TcpStack {
 public:
  const char* name() const override { return "reno"; }

  void OnBind(TcpConn& conn) override {
    // A fresh connection starts in slow start at the initial window. On a
    // hot-swap mid-flight the predecessor's window carries over untouched.
    if (conn.cwnd_bytes == 0) {
      conn.cwnd_bytes = kInitialWindow;
      conn.ssthresh_bytes = ~size_t{0};
    }
  }

  void OnSendReady(TcpConn& conn) override { PumpPending(conn); }

  void OnAck(TcpConn& conn, uint32_t ack) override {
    if (ack > conn.snd_una) {
      AckResult result = AckAdvance(conn, ack);
      if (conn.in_recovery && ack >= conn.recover_seq) {
        conn.in_recovery = false;
      }
      Grow(conn, result.acked_bytes);
      PumpPending(conn);
      return;
    }
    if (conn.flight.empty()) {
      return;
    }
    if (++conn.dup_acks >= kDupAckThreshold && !conn.in_recovery) {
      // Fast retransmit: one recovery episode per window of loss.
      conn.in_recovery = true;
      conn.recover_seq = FlightEnd(conn);
      conn.ssthresh_bytes = HalvedWindow(conn);
      conn.cwnd_bytes = conn.ssthresh_bytes;
      for (TcpSegment& segment : conn.flight) {
        conn.driver->Retransmit(conn, segment);
      }
      if (conn.sim != nullptr) {
        RestartTimer(conn, conn.sim->now_ns());
      }
    }
  }

  void OnTimer(TcpConn& conn, uint64_t now_ns) override {
    if (conn.flight.empty()) {
      return;
    }
    if (++conn.backoff > conn.max_retries) {
      conn.driver->Abort(conn);
      return;
    }
    // RTO: collapse the window for *new* data and slow-start back up. The
    // retransmission itself is still go-back-N — the receiver discarded
    // everything behind the hole, so resending only the front would hand
    // it one segment per RTO and serialize the rest of the flight on the
    // retransmit timer.
    conn.ssthresh_bytes = HalvedWindow(conn);
    conn.cwnd_bytes = kTcpMss;
    conn.in_recovery = false;
    conn.dup_acks = 0;
    for (TcpSegment& segment : conn.flight) {
      conn.driver->Retransmit(conn, segment);
    }
    RestartTimer(conn, now_ns);
  }

 private:
  static void Grow(TcpConn& conn, size_t acked_bytes) {
    if (conn.in_recovery || acked_bytes == 0) {
      return;
    }
    if (conn.cwnd_bytes < conn.ssthresh_bytes) {
      conn.cwnd_bytes += acked_bytes;  // slow start: one MSS per MSS acked
    } else {
      // Congestion avoidance: ~one MSS per RTT.
      conn.cwnd_bytes +=
          std::max<size_t>(kTcpMss * kTcpMss / conn.cwnd_bytes, 1);
    }
  }
};

}  // namespace

std::unique_ptr<TcpStack> MakeRenoStack() {
  return std::make_unique<RenoStack>();
}

}  // namespace net
}  // namespace spin
