#include "src/net/compress.h"

#include <cstring>

#include "src/micro/program.h"

namespace spin {
namespace net {

size_t RleCompress(const uint8_t* in, size_t n, uint8_t* out, size_t cap) {
  size_t o = 0;
  size_t i = 0;
  while (i < n) {
    uint8_t byte = in[i];
    size_t run = 1;
    while (i + run < n && in[i + run] == byte && run < 255) {
      ++run;
    }
    if (o + 2 > cap) {
      return 0;
    }
    out[o++] = static_cast<uint8_t>(run);
    out[o++] = byte;
    i += run;
  }
  return o < n ? o : 0;  // only worthwhile when it shrinks
}

size_t RleDecompress(const uint8_t* in, size_t n, uint8_t* out, size_t cap) {
  if (n % 2 != 0) {
    return 0;
  }
  size_t o = 0;
  for (size_t i = 0; i < n; i += 2) {
    size_t run = in[i];
    if (run == 0 || o + run > cap) {
      return 0;
    }
    std::memset(out + o, in[i + 1], run);
    o += run;
  }
  return o;
}

CompressionExtension::CompressionExtension(Host& sender, Host& receiver)
    : sender_(sender), receiver_(receiver) {
  compress_binding_ = sender_.dispatcher().InstallHandler(
      sender_.EtherPacketSend, &CompressionExtension::Compress, this,
      {.order = {OrderKind::kFirst}, .module = &module_});
  decompress_binding_ = receiver_.dispatcher().InstallHandler(
      receiver_.EtherPacketArrived, &CompressionExtension::Decompress, this,
      {.order = {OrderKind::kFirst}, .module = &module_});
  // Only marked frames reach the decompressor: an inlinable one-byte guard
  // on the TOS marker.
  receiver_.dispatcher().AddMicroGuard(
      decompress_binding_,
      micro::GuardArgFieldEq(/*num_args=*/1, /*arg=*/0, kIpTosOff,
                             /*width=*/1, ~0ull, kCompressedTos));
}

CompressionExtension::~CompressionExtension() {
  if (compress_binding_ != nullptr && compress_binding_->active.load()) {
    sender_.dispatcher().Uninstall(compress_binding_, &module_);
  }
  if (decompress_binding_ != nullptr &&
      decompress_binding_->active.load()) {
    receiver_.dispatcher().Uninstall(decompress_binding_, &module_);
  }
}

namespace {

// L4 payload offset for the protocols the codec understands; 0 for
// anything else (left untouched).
size_t PayloadOffset(const Packet& packet) {
  switch (packet.ip_proto()) {
    case kIpProtoUdp:
      return kUdpPayloadOff;
    case kIpProtoTcp:
      return kTcpPayloadOff;
    default:
      return 0;
  }
}

}  // namespace

bool CompressionExtension::Compress(CompressionExtension* ext,
                                    Packet* packet) {
  size_t payload_off = PayloadOffset(*packet);
  if (payload_off == 0 || packet->len <= payload_off + 16) {
    return true;  // not worth it; pass through untouched
  }
  uint8_t scratch[kMaxFrame];
  size_t payload_len = packet->len - payload_off;
  size_t compressed_len = RleCompress(packet->data + payload_off,
                                      payload_len, scratch,
                                      sizeof(scratch));
  if (compressed_len == 0) {
    return true;  // incompressible
  }
  std::memcpy(packet->data + payload_off, scratch, compressed_len);
  packet->len = static_cast<uint32_t>(payload_off + compressed_len);
  packet->data[kIpTosOff] = kCompressedTos;
  StampIpChecksum(*packet);  // the TOS marker changed the header
  if (packet->ip_proto() == kIpProtoUdp) {
    packet->Put16(kUdpLenOff, static_cast<uint16_t>(8 + compressed_len));
    StampUdpChecksum(*packet);  // the payload bytes changed too
  }
  ++ext->compressed_;
  ext->bytes_saved_ += payload_len - compressed_len;
  return true;
}

bool CompressionExtension::Decompress(CompressionExtension* ext,
                                      Packet* packet) {
  size_t payload_off = PayloadOffset(*packet);
  if (payload_off == 0 || packet->len < payload_off) {
    return false;  // marked frame with no decodable payload: drop
  }
  uint8_t scratch[kMaxFrame];
  size_t compressed_len = packet->len - payload_off;
  size_t payload_len = RleDecompress(packet->data + payload_off,
                                     compressed_len, scratch,
                                     kMaxFrame - payload_off);
  if (payload_len == 0) {
    return false;  // malformed; let the stack drop it
  }
  std::memcpy(packet->data + payload_off, scratch, payload_len);
  packet->len = static_cast<uint32_t>(payload_off + payload_len);
  packet->data[kIpTosOff] = 0;  // restore the original header
  StampIpChecksum(*packet);
  if (packet->ip_proto() == kIpProtoUdp) {
    packet->Put16(kUdpLenOff, static_cast<uint16_t>(8 + payload_len));
    StampUdpChecksum(*packet);
  }
  ++ext->decompressed_;
  return false;  // transformed, not consumed: the IP layer still runs
}

}  // namespace net
}  // namespace spin
