#include "src/net/tcp.h"

#include "src/micro/program.h"
#include "src/rt/panic.h"

namespace spin {
namespace net {

TcpEndpoint::TcpEndpoint(Host& host, uint16_t local_port)
    : host_(host), local_port_(local_port) {
  binding_ = host_.dispatcher().InstallHandler(
      host_.TcpPacketArrived, &TcpEndpoint::Input, this,
      {.module = &host_.module()});
  host_.dispatcher().AddMicroGuard(
      binding_,
      micro::GuardArgFieldEq(/*num_args=*/1, /*arg=*/0, kDstPortOff,
                             /*width=*/2, ~0ull,
                             PortFieldValue(local_port_)));
}

TcpEndpoint::~TcpEndpoint() {
  if (binding_ != nullptr && binding_->active.load()) {
    host_.dispatcher().Uninstall(binding_, &host_.module());
  }
}

void TcpEndpoint::Listen(DataFn on_data) {
  on_data_ = std::move(on_data);
  state_ = State::kListen;
}

void TcpEndpoint::Connect(uint32_t dst_ip, uint16_t dst_port,
                          DataFn on_data) {
  on_data_ = std::move(on_data);
  remote_ip_ = dst_ip;
  remote_port_ = dst_port;
  state_ = State::kSynSent;
  snd_next_ = 1000;  // deterministic ISN keeps tests reproducible
  Emit(kTcpSyn, "");
  ++snd_next_;  // SYN consumes one sequence number
}

void TcpEndpoint::Emit(uint8_t flags, const std::string& payload) {
  ++segments_sent_;
  host_.Transmit(MakeTcpPacket(host_.ip(), remote_ip_, local_port_,
                               remote_port_, snd_next_, rcv_next_, flags,
                               payload));
}

void TcpEndpoint::Send(const std::string& data) {
  SPIN_ASSERT_MSG(state_ == State::kEstablished,
                  "Send on a non-established connection");
  size_t offset = 0;
  while (offset < data.size()) {
    size_t chunk = std::min(kTcpMss, data.size() - offset);
    std::string payload = data.substr(offset, chunk);
    Emit(kTcpAckFlag, payload);
    TrackSent(snd_next_, payload);
    snd_next_ += static_cast<uint32_t>(chunk);
    offset += chunk;
  }
}

void TcpEndpoint::EnableRetransmit(sim::Simulator* sim,
                                   uint64_t timeout_ns) {
  sim_ = sim;
  rto_ns_ = timeout_ns;
}

void TcpEndpoint::TrackSent(uint32_t seq, const std::string& payload) {
  if (sim_ == nullptr || payload.empty()) {
    return;
  }
  unacked_.push_back(Unacked{seq, payload, sim_->now_ns()});
  ArmTimer();
}

void TcpEndpoint::OnAck(uint32_t ack) {
  while (!unacked_.empty() &&
         unacked_.front().seq +
                 static_cast<uint32_t>(unacked_.front().payload.size()) <=
             ack) {
    unacked_.pop_front();
  }
}

void TcpEndpoint::ArmTimer() {
  if (timer_armed_ || sim_ == nullptr) {
    return;
  }
  timer_armed_ = true;
  sim_->After(rto_ns_, [this] { RetransmitCheck(); });
}

void TcpEndpoint::RetransmitCheck() {
  timer_armed_ = false;
  if (unacked_.empty()) {
    return;
  }
  uint64_t now = sim_->now_ns();
  if (unacked_.front().sent_at_ns + rto_ns_ <= now) {
    // Go-back-N: resend every outstanding segment in order. The receiver's
    // cumulative ACK discards what it already has.
    for (Unacked& segment : unacked_) {
      ++retransmissions_;
      ++segments_sent_;
      host_.Transmit(MakeTcpPacket(host_.ip(), remote_ip_, local_port_,
                                   remote_port_, segment.seq, rcv_next_,
                                   kTcpAckFlag, segment.payload));
      segment.sent_at_ns = now;
    }
  }
  ArmTimer();
}

void TcpEndpoint::Close() {
  if (state_ == State::kEstablished) {
    Emit(kTcpFin | kTcpAckFlag, "");
    ++snd_next_;
    state_ = State::kFinWait;
  }
}

bool TcpEndpoint::Input(TcpEndpoint* ep, Packet* packet) {
  ++ep->segments_received_;
  uint8_t flags = packet->tcp_flags();
  uint32_t seq = packet->tcp_seq();

  if ((flags & kTcpSyn) != 0 && (flags & kTcpAckFlag) == 0) {
    // Passive open: SYN -> SYN+ACK.
    if (ep->state_ != State::kListen) {
      return true;
    }
    ep->remote_ip_ = packet->ip_src();
    ep->remote_port_ = packet->src_port();
    ep->rcv_next_ = seq + 1;
    ep->snd_next_ = 5000;
    ep->state_ = State::kSynReceived;
    ep->Emit(kTcpSyn | kTcpAckFlag, "");
    ++ep->snd_next_;
    return true;
  }
  if ((flags & kTcpSyn) != 0 && (flags & kTcpAckFlag) != 0) {
    // Active opener receiving SYN+ACK -> ACK, established.
    ep->rcv_next_ = seq + 1;
    ep->state_ = State::kEstablished;
    ep->Emit(kTcpAckFlag, "");
    return true;
  }
  if ((flags & kTcpFin) != 0) {
    ep->rcv_next_ = seq + 1;
    ep->state_ = ep->state_ == State::kFinWait ? State::kClosed
                                               : State::kCloseWait;
    ep->Emit(kTcpAckFlag, "");
    return true;
  }

  // Plain ACK completes the passive handshake.
  if (ep->state_ == State::kSynReceived) {
    ep->state_ = State::kEstablished;
  }
  if ((flags & kTcpAckFlag) != 0) {
    ep->OnAck(packet->tcp_ack());
  }

  std::string payload = packet->TcpPayload();
  if (payload.empty()) {
    return true;
  }
  if (seq == ep->rcv_next_) {
    ep->rcv_next_ += static_cast<uint32_t>(payload.size());
    ep->bytes_received_ += payload.size();
    if (ep->on_data_) {
      ep->on_data_(payload);
    }
    ep->Emit(kTcpAckFlag, "");  // cumulative pure ACK per data segment
  } else {
    // Out-of-order or duplicate data (a loss upstream): re-advertise
    // rcv_next so a retransmitting sender converges (duplicate ACK).
    ep->Emit(kTcpAckFlag, "");
  }
  return true;
}

}  // namespace net
}  // namespace spin
