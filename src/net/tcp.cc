#include "src/net/tcp.h"

#include <algorithm>
#include <atomic>

#include "src/core/errors.h"
#include "src/core/shard.h"
#include "src/micro/program.h"
#include "src/rt/panic.h"

namespace spin {
namespace net {
namespace {

// Raise-source ids for SourceKind::kConnection: process-unique so the
// sharded dispatcher spreads a fleet of connections across shards.
std::atomic<uint64_t> g_next_conn_id{1};

uint64_t BackoffDeadline(const TcpConn& conn, uint64_t now_ns) {
  return now_ns + (conn.rto_ns << std::min(conn.backoff, 16u));
}

}  // namespace

TcpEndpoint::TcpEndpoint(Host& host, uint16_t local_port)
    : host_(host),
      local_port_(local_port),
      alive_(std::make_shared<TcpEndpoint*>(this)) {
  conn_.id = g_next_conn_id.fetch_add(1);
  conn_.driver = this;
  binding_ = host_.dispatcher().InstallHandler(
      host_.TcpPacketArrived, &TcpEndpoint::Input, this,
      {.module = &host_.module()});
  host_.dispatcher().AddMicroGuard(
      binding_,
      micro::GuardArgFieldEq(/*num_args=*/1, /*arg=*/0, kDstPortOff,
                             /*width=*/2, ~0ull,
                             PortFieldValue(local_port_)));
}

TcpEndpoint::~TcpEndpoint() {
  *alive_ = nullptr;
  DropStackBindings();
  if (binding_ != nullptr && binding_->active.load()) {
    host_.dispatcher().Uninstall(binding_, &host_.module());
  }
}

void TcpEndpoint::Listen(DataFn on_data) {
  on_data_ = std::move(on_data);
  state_ = State::kListen;
}

void TcpEndpoint::Connect(uint32_t dst_ip, uint16_t dst_port,
                          DataFn on_data) {
  on_data_ = std::move(on_data);
  remote_ip_ = dst_ip;
  remote_port_ = dst_port;
  state_ = State::kSynSent;
  iss_ = 1000;  // deterministic ISN keeps tests reproducible
  snd_next_ = iss_;
  Emit(kTcpSyn, "");
  ++snd_next_;  // SYN consumes one sequence number
  if (stack_ != nullptr && conn_.sim != nullptr) {
    conn_.timer_deadline_ns = BackoffDeadline(conn_, conn_.sim->now_ns());
    ScheduleTimer();
  }
}

void TcpEndpoint::Emit(uint8_t flags, const std::string& payload) {
  EmitRaw(snd_next_, flags, payload);
}

void TcpEndpoint::EmitRaw(uint32_t seq, uint8_t flags,
                          const std::string& payload) {
  ++segments_sent_;
  host_.Transmit(MakeTcpPacket(host_.ip(), remote_ip_, local_port_,
                               remote_port_, seq, rcv_next_, flags,
                               payload));
}

void TcpEndpoint::Send(const std::string& data) {
  SPIN_ASSERT_MSG(state_ == State::kEstablished,
                  "Send on a non-established connection");
  if (stack_ != nullptr) {
    conn_.pending.append(data);
    RaiseSegmentOut();
    ScheduleTimer();
    return;
  }
  // No stack bound: blast every segment immediately, untracked.
  size_t offset = 0;
  while (offset < data.size()) {
    size_t chunk = std::min(kTcpMss, data.size() - offset);
    Emit(kTcpAckFlag, data.substr(offset, chunk));
    snd_next_ += static_cast<uint32_t>(chunk);
    offset += chunk;
  }
}

void TcpEndpoint::EnableRetransmit(sim::Simulator* sim,
                                   uint64_t timeout_ns) {
  bool bound = UseStack(sim, "stop_and_wait", timeout_ns);
  SPIN_ASSERT_MSG(bound, "stop_and_wait install denied");
}

bool TcpEndpoint::UseStack(sim::Simulator* sim, const std::string& name,
                           uint64_t rto_ns, void* credentials) {
  RegisterBuiltinTcpStacks();
  if (state_ == State::kDead) {
    return false;
  }
  std::unique_ptr<TcpStack> next = TcpStackRegistry::Global().Create(name);
  if (next == nullptr) {
    return false;
  }
  // "#<conn id>" keeps the module name unique per connection so quota
  // accounting exports one series per module instance; authorizers parse
  // the stack name up to the '#'.
  auto module = std::make_unique<Module>("TcpStack." + name + "#" +
                                         std::to_string(conn_.id));
  Dispatcher& dispatcher = host_.dispatcher();
  InstallOptions opts;
  opts.module = module.get();
  opts.credentials = credentials;
  BindingHandle installed[3];
  try {
    installed[0] = dispatcher.InstallHandler(
        host_.TcpSegmentOut, &TcpEndpoint::StackSegmentOut, this, opts);
    dispatcher.AddGuard(host_.TcpSegmentOut, installed[0],
                        &TcpEndpoint::ConnGuard, &conn_);
    installed[1] = dispatcher.InstallHandler(
        host_.TcpAckIn, &TcpEndpoint::StackAckIn, this, opts);
    dispatcher.AddGuard(host_.TcpAckIn, installed[1],
                        &TcpEndpoint::ConnGuardAck, &conn_);
    installed[2] = dispatcher.InstallHandler(
        host_.TcpTimer, &TcpEndpoint::StackTimer, this, opts);
    dispatcher.AddGuard(host_.TcpTimer, installed[2],
                        &TcpEndpoint::ConnGuard, &conn_);
  } catch (const InstallError&) {
    // §2.5 denial (or any install failure): unwind whatever landed and
    // leave the incumbent stack bound — the connection never notices.
    for (BindingHandle& binding : installed) {
      if (binding != nullptr && binding->active.load()) {
        dispatcher.Uninstall(binding, module.get());
      }
    }
    return false;
  }
  // The swap is committed: retire the outgoing stack's bindings.
  DropStackBindings();
  for (int i = 0; i < 3; ++i) {
    stack_bindings_[i] = std::move(installed[i]);
  }
  stack_ = std::move(next);
  stack_module_ = std::move(module);
  stack_name_ = name;
  conn_.sim = sim;
  conn_.rto_ns = rto_ns;
  stack_->OnBind(conn_);
  // Mid-flight swap: the successor inherits pending/in-flight data and
  // continues from exactly where the predecessor stopped.
  if (state_ == State::kEstablished &&
      (conn_.pending_off < conn_.pending.size() || !conn_.flight.empty())) {
    RaiseSegmentOut();
  }
  if ((state_ == State::kSynSent || state_ == State::kSynReceived) &&
      conn_.timer_deadline_ns == 0 && conn_.sim != nullptr) {
    conn_.timer_deadline_ns = BackoffDeadline(conn_, conn_.sim->now_ns());
  }
  ScheduleTimer();
  return true;
}

void TcpEndpoint::DropStackBindings() {
  Dispatcher& dispatcher = host_.dispatcher();
  for (BindingHandle& binding : stack_bindings_) {
    if (binding != nullptr && binding->active.load()) {
      dispatcher.Uninstall(binding, stack_module_.get());
    }
    binding = nullptr;
  }
  stack_.reset();
  stack_module_.reset();
  stack_name_.clear();
}

void TcpEndpoint::RaiseSegmentOut() {
  RaiseSourceScope source(
      MakeRaiseSource(SourceKind::kConnection, conn_.id));
  host_.TcpSegmentOut.Raise(&conn_);
}

void TcpEndpoint::StackSegmentOut(TcpEndpoint* ep, TcpConn* conn) {
  if (ep->stack_ != nullptr && conn == &ep->conn_) {
    ep->stack_->OnSendReady(*conn);
  }
}

void TcpEndpoint::StackAckIn(TcpEndpoint* ep, TcpConn* conn, uint64_t ack) {
  if (ep->stack_ != nullptr && conn == &ep->conn_) {
    ep->stack_->OnAck(*conn, static_cast<uint32_t>(ack));
  }
}

void TcpEndpoint::StackTimer(TcpEndpoint* ep, TcpConn* conn) {
  if (ep->stack_ != nullptr && conn == &ep->conn_ &&
      conn->sim != nullptr) {
    ep->stack_->OnTimer(*conn, conn->sim->now_ns());
  }
}

bool TcpEndpoint::ConnGuard(TcpConn* mine, TcpConn* conn) {
  return conn == mine;
}

bool TcpEndpoint::ConnGuardAck(TcpConn* mine, TcpConn* conn, uint64_t ack) {
  (void)ack;
  return conn == mine;
}

void TcpEndpoint::SendNewSegment(TcpConn& conn, const std::string& payload) {
  SPIN_ASSERT(conn.sim != nullptr);
  uint64_t now = conn.sim->now_ns();
  Emit(kTcpAckFlag, payload);
  conn.flight.push_back(TcpSegment{snd_next_, payload, now, 1});
  conn.flight_bytes += payload.size();
  snd_next_ += static_cast<uint32_t>(payload.size());
  if (conn.timer_deadline_ns == 0) {
    conn.timer_deadline_ns = BackoffDeadline(conn, now);
  }
}

void TcpEndpoint::Retransmit(TcpConn& conn, TcpSegment& segment) {
  ++retransmissions_;
  EmitRaw(segment.seq, kTcpAckFlag, segment.payload);
  segment.sent_at_ns = conn.sim != nullptr ? conn.sim->now_ns() : 0;
  ++segment.transmissions;
}

void TcpEndpoint::Abort(TcpConn& conn) {
  state_ = State::kDead;
  conn.pending.clear();
  conn.pending_off = 0;
  conn.flight.clear();
  conn.flight_bytes = 0;
  conn.timer_deadline_ns = 0;
}

void TcpEndpoint::ScheduleTimer() {
  if (conn_.sim == nullptr || conn_.timer_deadline_ns == 0) {
    return;
  }
  // Lazy reprogramming: a pending wake at or before the deadline will
  // re-check and re-arm; only a deadline earlier than every pending wake
  // needs a fresh callback.
  if (timer_pending_ && timer_wake_ns_ <= conn_.timer_deadline_ns) {
    return;
  }
  timer_pending_ = true;
  timer_wake_ns_ = conn_.timer_deadline_ns;
  std::shared_ptr<TcpEndpoint*> alive = alive_;
  conn_.sim->At(timer_wake_ns_, [alive] {
    if (*alive != nullptr) {
      (*alive)->TimerFired();
    }
  });
}

void TcpEndpoint::TimerFired() {
  timer_pending_ = false;
  if (conn_.sim == nullptr || conn_.timer_deadline_ns == 0) {
    return;
  }
  uint64_t now = conn_.sim->now_ns();
  if (now < conn_.timer_deadline_ns) {
    ScheduleTimer();  // the deadline moved since this wake was armed
    return;
  }
  conn_.timer_deadline_ns = 0;
  if (state_ == State::kSynSent || state_ == State::kSynReceived) {
    // Handshake retransmission rides the same backoff/abort budget as
    // data: an unanswered SYN (or SYN+ACK) is resent at its original
    // sequence number until the peer responds or the budget runs out.
    if (++conn_.backoff > conn_.max_retries) {
      Abort(conn_);
      return;
    }
    ++retransmissions_;
    EmitRaw(iss_, state_ == State::kSynSent ? kTcpSyn
                                            : (kTcpSyn | kTcpAckFlag),
            "");
    conn_.timer_deadline_ns = BackoffDeadline(conn_, now);
    ScheduleTimer();
    return;
  }
  if (stack_ != nullptr && state_ != State::kDead) {
    RaiseSourceScope source(
        MakeRaiseSource(SourceKind::kConnection, conn_.id));
    host_.TcpTimer.Raise(&conn_);
  }
  ScheduleTimer();
}

void TcpEndpoint::Established() {
  state_ = State::kEstablished;
  conn_.snd_una = snd_next_;
  conn_.backoff = 0;
  if (conn_.flight.empty()) {
    conn_.timer_deadline_ns = 0;
  }
}

void TcpEndpoint::Close() {
  if (state_ == State::kEstablished) {
    Emit(kTcpFin | kTcpAckFlag, "");
    ++snd_next_;
    state_ = State::kFinWait;
  }
}

bool TcpEndpoint::Input(TcpEndpoint* ep, Packet* packet) {
  ++ep->segments_received_;
  uint8_t flags = packet->tcp_flags();
  uint32_t seq = packet->tcp_seq();

  if ((flags & kTcpSyn) != 0 && (flags & kTcpAckFlag) == 0) {
    if (ep->state_ == State::kListen) {
      // Passive open: SYN -> SYN+ACK.
      ep->remote_ip_ = packet->ip_src();
      ep->remote_port_ = packet->src_port();
      ep->rcv_next_ = seq + 1;
      ep->iss_ = 5000;
      ep->snd_next_ = ep->iss_;
      ep->state_ = State::kSynReceived;
      ep->Emit(kTcpSyn | kTcpAckFlag, "");
      ++ep->snd_next_;
      if (ep->stack_ != nullptr && ep->conn_.sim != nullptr) {
        ep->conn_.timer_deadline_ns =
            BackoffDeadline(ep->conn_, ep->conn_.sim->now_ns());
        ep->ScheduleTimer();
      }
      return true;
    }
    if (ep->state_ == State::kSynReceived && seq + 1 == ep->rcv_next_) {
      // The client retransmitted its SYN — our SYN+ACK was lost. Answer
      // again at the original sequence number.
      ++ep->retransmissions_;
      ep->EmitRaw(ep->iss_, kTcpSyn | kTcpAckFlag, "");
      return true;
    }
    // A stray SYN in any other state must not re-corrupt the connection.
    return true;
  }
  if ((flags & kTcpSyn) != 0 && (flags & kTcpAckFlag) != 0) {
    if (ep->state_ != State::kSynSent) {
      // A SYN+ACK outside the active handshake (duplicate after our ACK
      // already established, or plain stray) is ignored.
      if (ep->state_ == State::kEstablished && seq + 1 == ep->rcv_next_) {
        ep->Emit(kTcpAckFlag, "");  // the peer missed our handshake ACK
      }
      return true;
    }
    ep->rcv_next_ = seq + 1;
    ep->Established();
    ep->Emit(kTcpAckFlag, "");
    return true;
  }
  if ((flags & kTcpFin) != 0) {
    if (seq != ep->rcv_next_) {
      // A reordered FIN must not advance rcv_next past undelivered data;
      // re-advertise where we are so the sender retransmits.
      ep->Emit(kTcpAckFlag, "");
      return true;
    }
    ep->rcv_next_ = seq + 1;
    ep->state_ = ep->state_ == State::kFinWait ? State::kClosed
                                               : State::kCloseWait;
    ep->Emit(kTcpAckFlag, "");
    return true;
  }

  // Plain ACK (or data) completes the passive handshake.
  if (ep->state_ == State::kSynReceived) {
    ep->Established();
  }
  if ((flags & kTcpAckFlag) != 0 && ep->stack_ != nullptr) {
    RaiseSourceScope source(
        MakeRaiseSource(SourceKind::kConnection, ep->conn_.id));
    ep->host_.TcpAckIn.Raise(&ep->conn_, packet->tcp_ack());
    ep->ScheduleTimer();
  }

  std::string payload = packet->TcpPayload();
  if (payload.empty()) {
    return true;
  }
  if (seq == ep->rcv_next_) {
    ep->rcv_next_ += static_cast<uint32_t>(payload.size());
    ep->bytes_received_ += payload.size();
    if (ep->on_data_) {
      ep->on_data_(payload);
    }
    ep->Emit(kTcpAckFlag, "");  // cumulative pure ACK per data segment
  } else {
    // Out-of-order or duplicate data (a loss upstream): re-advertise
    // rcv_next so a retransmitting sender converges (duplicate ACK).
    ep->Emit(kTcpAckFlag, "");
  }
  return true;
}

}  // namespace net
}  // namespace spin
