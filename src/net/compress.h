// Transparent protocol compression (§1: applications may "add compression
// to network protocols").
//
// A pure-extension feature: the compressor interposes on the sending
// host's Ether.PacketSend event (ordered First, ahead of the wire-transmit
// handler); the decompressor interposes on the receiving host's
// Ether.PacketArrived event, gated by an inlinable micro guard on the IP
// TOS marker byte, ahead of the IP input handler. Neither the stack nor
// the sockets change — the composition is forged entirely "from a
// distance" (§2.7).
#ifndef SRC_NET_COMPRESS_H_
#define SRC_NET_COMPRESS_H_

#include <cstddef>
#include <cstdint>

#include "src/net/host.h"

namespace spin {
namespace net {

// TOS marker for compressed frames.
inline constexpr size_t kIpTosOff = kIpOff + 1;  // 15
inline constexpr uint8_t kCompressedTos = 0x5a;

// Byte-run-length codec. Compress returns the output size, or 0 when the
// input does not shrink (or does not fit `cap`). Decompress returns the
// output size, or 0 on malformed input.
size_t RleCompress(const uint8_t* in, size_t n, uint8_t* out, size_t cap);
size_t RleDecompress(const uint8_t* in, size_t n, uint8_t* out, size_t cap);

class CompressionExtension {
 public:
  // Compresses UDP and TCP payloads sent by `sender` and decompresses
  // them on `receiver`. TCP segments are transformed below the endpoint
  // and its bound stack: sequence numbers, ACKs, and retransmissions all
  // operate on the uncompressed byte stream, so the extension composes
  // in-path with any pluggable stack (src/net/stacks/).
  CompressionExtension(Host& sender, Host& receiver);
  ~CompressionExtension();
  CompressionExtension(const CompressionExtension&) = delete;
  CompressionExtension& operator=(const CompressionExtension&) = delete;

  uint64_t compressed() const { return compressed_; }
  uint64_t decompressed() const { return decompressed_; }
  uint64_t bytes_saved() const { return bytes_saved_; }

 private:
  static bool Compress(CompressionExtension* ext, Packet* packet);
  static bool Decompress(CompressionExtension* ext, Packet* packet);

  Module module_{"Compression"};
  Host& sender_;
  Host& receiver_;
  BindingHandle compress_binding_;
  BindingHandle decompress_binding_;
  uint64_t compressed_ = 0;
  uint64_t decompressed_ = 0;
  uint64_t bytes_saved_ = 0;
};

}  // namespace net
}  // namespace spin

#endif  // SRC_NET_COMPRESS_H_
