#include "src/net/host.h"

#include <optional>
#include <ostream>

#include "src/core/shard.h"
#include "src/net/stacks/tcp_stack.h"
#include "src/obs/context.h"
#include "src/obs/export.h"
#include "src/obs/obs.h"
#include "src/rt/panic.h"

namespace spin {
namespace net {
namespace {

// Demultiplexing guards, expressed as micro-programs so the dispatcher can
// inline them into the generated dispatch routine.
micro::Program EtherTypeGuard(uint16_t ether_type) {
  return micro::GuardArgFieldEq(/*num_args=*/1, /*arg=*/0, kEtherTypeOff,
                                /*width=*/2, ~0ull,
                                PortFieldValue(ether_type));
}

micro::Program IpProtoGuard(uint8_t proto) {
  return micro::GuardArgFieldEq(/*num_args=*/1, /*arg=*/0, kIpProtoOff,
                                /*width=*/1, ~0ull, proto);
}

micro::Program DstPortGuard(uint16_t port) {
  return micro::GuardArgFieldEq(/*num_args=*/1, /*arg=*/0, kDstPortOff,
                                /*width=*/2, ~0ull, PortFieldValue(port));
}

}  // namespace

void Wire::Attach(Host& a, Host& b) {
  a_ = &a;
  b_ = &b;
  a.AttachWire(this);
  b.AttachWire(this);
}

void Wire::SetRandomLoss(double probability, uint64_t seed) {
  random_loss_ = probability;
  // xorshift64* needs nonzero state; fold the seed through a fixed odd
  // constant so seed 0 still produces a valid stream.
  rng_state_ = seed ^ 0x9e3779b97f4a7c15ull;
  if (rng_state_ == 0) {
    rng_state_ = 1;
  }
}

bool Wire::ShouldDrop(const Packet& packet) {
  if (loss_pattern_ != 0 && frame_count_ % loss_pattern_ == 0) {
    return true;
  }
  if (random_loss_ > 0) {
    // xorshift64* (Vigna): consumed once per frame regardless of the other
    // mechanisms, so the drop pattern depends only on seed + frame index.
    uint64_t x = rng_state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    rng_state_ = x;
    uint64_t r = x * 0x2545f4914f6cdd1dull;
    if (static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0) <
        random_loss_) {
      return true;
    }
  }
  uint64_t now = sim_->now_ns();
  if (partition_to_ns_ > partition_from_ns_ && now >= partition_from_ns_ &&
      now < partition_to_ns_) {
    return true;
  }
  if (drop_hook_ && drop_hook_(packet, now, frame_count_)) {
    return true;
  }
  return false;
}

void Wire::Send(Host& from, const Packet& packet) {
  SPIN_ASSERT(a_ != nullptr && b_ != nullptr);
  Host* to = &from == a_ ? b_ : a_;
  bytes_ += packet.len;
  uint64_t start = std::max(sim_->now_ns(), busy_until_ns_);
  uint64_t done = start + model_.SerializationNs(packet.len);
  busy_until_ns_ = done;
  ++frame_count_;
  if (ShouldDrop(packet)) {
    ++lost_;
    return;  // the frame burned airtime but never arrives
  }
  sim_->At(done + model_.propagation_ns,
           [to, packet] { to->Receive(packet); });
}

Host::Host(std::string name, uint32_t ip, Dispatcher* dispatcher)
    : EtherPacketArrived("Ether.PacketArrived", &module_, nullptr,
                         dispatcher),
      IpPacketArrived("Ip.PacketArrived", &module_, nullptr, dispatcher),
      UdpPacketArrived("Udp.PacketArrived", &module_, nullptr, dispatcher),
      TcpPacketArrived("Tcp.PacketArrived", &module_, nullptr, dispatcher),
      EtherPacketSend("Ether.PacketSend", &module_, nullptr, dispatcher),
      TcpSegmentOut("Tcp.SegmentOut", &module_, nullptr, dispatcher),
      TcpAckIn("Tcp.AckIn", &module_, nullptr, dispatcher),
      TcpTimer("Tcp.Timer", &module_, nullptr, dispatcher),
      name_(std::move(name)),
      ip_(ip),
      dispatcher_(dispatcher),
      module_("Net." + name_) {
  trace_host_id_ = obs::RegisterTraceHost(name_);
  for (EventBase* event : std::initializer_list<EventBase*>{
           &EtherPacketArrived, &IpPacketArrived, &UdpPacketArrived,
           &TcpPacketArrived}) {
    dispatcher_->SetResultPolicy(*event, ResultPolicy::kOr, &module_);
  }
  // Unconsumed packets are dropped (the default handler fires when no
  // guard admits the packet).
  dispatcher_->InstallDefaultHandler(EtherPacketArrived, &Host::Drop, this,
                                     {.module = &module_});
  dispatcher_->InstallDefaultHandler(IpPacketArrived, &Host::Drop, this,
                                     {.module = &module_});
  dispatcher_->InstallDefaultHandler(UdpPacketArrived, &Host::Drop, this,
                                     {.module = &module_});
  dispatcher_->InstallDefaultHandler(TcpPacketArrived, &Host::Drop, this,
                                     {.module = &module_});

  // The stack events fire into whatever stack bindings connections have
  // installed; with none bound (or a guard mismatch) the raise must still
  // be legal, hence no-op defaults.
  dispatcher_->InstallDefaultHandler(TcpSegmentOut, &Host::TcpStackIdle,
                                     this, {.module = &module_});
  dispatcher_->InstallDefaultHandler(TcpAckIn, &Host::TcpStackIdleAck, this,
                                     {.module = &module_});
  dispatcher_->InstallDefaultHandler(TcpTimer, &Host::TcpStackIdle, this,
                                     {.module = &module_});

  // The outbound path: the wire-transmit handler plays the intrinsic role
  // (ordered Last so interposed transforms run before it). If a guard
  // imposed on the transmit binding rejects the frame (an outbound
  // firewall) nothing fires and the default handler counts the drop.
  dispatcher_->SetResultPolicy(EtherPacketSend, ResultPolicy::kAnd,
                               &module_);
  dispatcher_->InstallDefaultHandler(EtherPacketSend, &Host::DropOutbound,
                                     this, {.module = &module_});
  transmit_binding_ = dispatcher_->InstallHandler(
      EtherPacketSend, &Host::WireTransmit, this,
      {.order = {OrderKind::kLast}, .module = &module_});

  // The protocol layers attach as guarded extensions.
  auto ip_binding = dispatcher_->InstallHandler(
      EtherPacketArrived, &Host::IpInput, this, {.module = &module_});
  dispatcher_->AddMicroGuard(ip_binding, EtherTypeGuard(kEtherTypeIp));

  auto udp_binding = dispatcher_->InstallHandler(
      IpPacketArrived, &Host::UdpInput, this, {.module = &module_});
  dispatcher_->AddMicroGuard(udp_binding, IpProtoGuard(kIpProtoUdp));

  auto tcp_binding = dispatcher_->InstallHandler(
      IpPacketArrived, &Host::TcpInput, this, {.module = &module_});
  dispatcher_->AddMicroGuard(tcp_binding, IpProtoGuard(kIpProtoTcp));

  obs::RegisterSource(this, &Host::ExportMetricsSource);
}

Host::~Host() { obs::UnregisterSource(this); }

void Host::ExportMetricsSource(void* ctx, std::ostream& os) {
  auto* self = static_cast<Host*>(ctx);
  auto line = [&os, self](const char* name, uint64_t value) {
    os << name << "{host=\"";
    obs::WriteLabelValue(os, self->name_);
    os << "\"} " << value << "\n";
  };
  line("spin_net_rx_packets_total", self->rx_);
  line("spin_net_tx_packets_total", self->tx_);
  line("spin_net_rx_dropped_total", self->dropped_);
  line("spin_net_tx_dropped_total", self->tx_dropped_);
  line("spin_net_ip_checksum_drops_total", self->checksum_drops_);
  line("spin_net_udp_checksum_drops_total", self->udp_checksum_drops_);
}

bool Host::IpInput(Host* host, Packet* packet) {
  if (!VerifyIpChecksum(*packet)) {
    ++host->checksum_drops_;
    return false;
  }
  return host->IpPacketArrived.Raise(packet);
}

bool Host::UdpInput(Host* host, Packet* packet) {
  if (!VerifyUdpChecksum(*packet)) {
    ++host->udp_checksum_drops_;
    return false;
  }
  return host->UdpPacketArrived.Raise(packet);
}

bool Host::TcpInput(Host* host, Packet* packet) {
  return host->TcpPacketArrived.Raise(packet);
}

bool Host::Drop(Host* host, Packet* packet) {
  (void)packet;
  ++host->dropped_;
  return false;
}

bool Host::DropOutbound(Host* host, Packet* packet) {
  (void)packet;
  ++host->tx_dropped_;
  return false;
}

void Host::TcpStackIdle(Host* host, TcpConn* conn) {
  (void)host;
  (void)conn;
}

void Host::TcpStackIdleAck(Host* host, TcpConn* conn, uint64_t ack) {
  (void)host;
  (void)conn;
  (void)ack;
}

bool Host::WireTransmit(Host* host, Packet* packet) {
  SPIN_ASSERT_MSG(host->wire_ != nullptr, "host %s has no wire",
                  host->name_.c_str());
  ++host->tx_;
  host->wire_->Send(*host, *packet);
  return true;
}

void Host::Transmit(const Packet& packet) {
  // By-value copy into the event frame: interposed handlers may rewrite
  // the frame without disturbing the caller's packet.
  Packet outbound = packet;
  (void)EtherPacketSend.Raise(&outbound);
}

void Host::Receive(Packet packet) {
  ++rx_;
  // Everything the delivery triggers — the packet-event chain, socket
  // callbacks, an Exporter dispatch — is this host's work; stamp its trace
  // records with the host identity so each sim host gets its own process
  // row in the exported trace, and pin the dispatch chain to the host's
  // shard (the host is the raise source for inbound traffic).
  std::optional<obs::HostScope> host_scope;
  if (obs::Enabled()) {
    host_scope.emplace(trace_host_id_);
  }
  RaiseSourceScope source(MakeRaiseSource(SourceKind::kHost, ip_));
  (void)EtherPacketArrived.Raise(&packet);
}

UdpSocket::UdpSocket(Host& host, uint16_t port, ReceiveFn on_receive)
    : host_(host), port_(port), on_receive_(std::move(on_receive)) {
  binding_ = host_.dispatcher().InstallHandler(
      host_.UdpPacketArrived, &UdpSocket::Input, this,
      {.module = &host_.module()});
  host_.dispatcher().AddMicroGuard(binding_, DstPortGuard(port_));
}

UdpSocket::~UdpSocket() {
  if (binding_ != nullptr && binding_->active.load()) {
    host_.dispatcher().Uninstall(binding_, &host_.module());
  }
}

bool UdpSocket::Input(UdpSocket* socket, Packet* packet) {
  ++socket->received_;
  if (socket->on_receive_) {
    socket->on_receive_(*packet);
  }
  return true;
}

void UdpSocket::SendTo(uint32_t dst_ip, uint16_t dst_port,
                       const std::string& payload) {
  host_.Transmit(
      MakeUdpPacket(host_.ip(), dst_ip, port_, dst_port, payload));
}

}  // namespace net
}  // namespace spin
