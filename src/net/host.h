// Event-driven protocol stack (Fiuczynski & Bershad 96 analogue, §3.2).
//
// Each host owns the packet events of Table 3 — Ether.PacketArrived,
// Ip.PacketArrived, Udp.PacketArrived, Tcp.PacketArrived — and the protocol
// layers are *extensions*: IP attaches to the Ethernet event with a guard
// on the ethertype; UDP and TCP attach to the IP event with guards on the
// protocol field; sockets attach to the UDP/TCP events with guards on the
// destination port. All demultiplexing guards are micro-programs, so the
// generated dispatch routine inlines them exactly as SPIN inlined its
// packet guards.
#ifndef SRC_NET_HOST_H_
#define SRC_NET_HOST_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

#include "src/core/dispatcher.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"

namespace spin {
namespace net {

class Host;
struct TcpConn;  // src/net/stacks/tcp_stack.h

// A point-to-point link between two hosts, timed by the simulator.
//
// Failure injection: four independent mechanisms decide whether a frame
// that has already burned its airtime actually arrives — a deterministic
// every-nth pattern, a seeded pseudo-random loss rate, a partition window
// in virtual time, and an arbitrary per-frame hook. All are deterministic
// given the same seed and send sequence, so retry/backoff behavior above
// the wire (TCP retransmit, remote dispatch) replays exactly.
class Wire {
 public:
  // Drop decision hook: return true to drop the frame. `frame_index` is
  // the 1-based count of frames offered to the wire.
  using DropHook = std::function<bool(const Packet& packet, uint64_t now_ns,
                                      uint64_t frame_index)>;

  Wire(sim::Simulator* sim, sim::LinkModel model)
      : sim_(sim), model_(model) {}

  void Attach(Host& a, Host& b);
  void Send(Host& from, const Packet& packet);

  // Deterministic loss injection: drops every nth frame (0 = lossless).
  // The frame still occupies the wire (collisions lost airtime too).
  void SetLossPattern(uint32_t drop_every_nth) {
    loss_pattern_ = drop_every_nth;
  }

  // Seeded pseudo-random loss: each frame is dropped with `probability`
  // (xorshift64*, so the drop pattern is a pure function of the seed and
  // the frame sequence). probability <= 0 disables.
  void SetRandomLoss(double probability, uint64_t seed);

  // Partition window: every frame sent at virtual time t in
  // [from_ns, to_ns) vanishes. SetPartition(0, 0) heals the partition.
  void SetPartition(uint64_t from_ns, uint64_t to_ns) {
    partition_from_ns_ = from_ns;
    partition_to_ns_ = to_ns;
  }

  // Arbitrary injection (consulted last; nullptr disables).
  void SetDropHook(DropHook hook) { drop_hook_ = std::move(hook); }

  uint64_t frames_lost() const { return lost_; }
  uint64_t frames_offered() const { return frame_count_; }

  uint64_t bytes_carried() const { return bytes_; }
  const sim::LinkModel& model() const { return model_; }

 private:
  bool ShouldDrop(const Packet& packet);

  sim::Simulator* sim_;
  sim::LinkModel model_;
  Host* a_ = nullptr;
  Host* b_ = nullptr;
  uint64_t bytes_ = 0;
  uint32_t loss_pattern_ = 0;
  double random_loss_ = 0;
  uint64_t rng_state_ = 0;
  uint64_t partition_from_ns_ = 0;
  uint64_t partition_to_ns_ = 0;
  DropHook drop_hook_;
  uint64_t frame_count_ = 0;
  uint64_t lost_ = 0;
  // The medium serializes one frame at a time; transmission of frame n+1
  // cannot begin before frame n has left the wire (keeps delivery in FIFO
  // order, as on the paper's shared 10 Mb/s Ethernet).
  uint64_t busy_until_ns_ = 0;
};

class Host {
 public:
  Host(std::string name, uint32_t ip, Dispatcher* dispatcher);
  ~Host();
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const std::string& host_name() const { return name_; }
  uint32_t ip() const { return ip_; }
  // This host's identity in flight-recorder traces (obs::RegisterTraceHost):
  // records emitted while the host processes traffic carry it, and
  // WriteChromeTrace renders one process row per host id.
  uint32_t trace_host_id() const { return trace_host_id_; }
  Dispatcher& dispatcher() { return *dispatcher_; }
  const Module& module() const { return module_; }
  Module& module() { return module_; }

  // Credential this host presents when binding to remote events (§2.5
  // across the wire). The blob is opaque here: remote proxies carry it in
  // their BindRequest unless ProxyOptions overrides it per proxy, and only
  // the exporter-side authorizer interprets it.
  void SetCredential(std::string credential) {
    credential_ = std::move(credential);
  }
  const std::string& credential() const { return credential_; }

  // The packet events (result: "did any handler consume the packet").
  Event<bool(Packet*)> EtherPacketArrived;
  Event<bool(Packet*)> IpPacketArrived;
  Event<bool(Packet*)> UdpPacketArrived;
  Event<bool(Packet*)> TcpPacketArrived;

  // Raised for every outbound frame before it reaches the wire. The
  // default handler transmits; extensions interpose to transform traffic —
  // the paper's motivating "add compression to network protocols" (§1).
  // Handlers may rewrite the packet in place; returning false drops it.
  Event<bool(Packet*)> EtherPacketSend;

  // Per-connection TCP stack events (src/net/stacks/): a bound stack is a
  // set of guarded handlers on these three, keyed on the TcpConn pointer,
  // so stack selection is a guarded install and hot-swap is an
  // uninstall/install pair gated by this host's §2.5 authorizer. The
  // no-op defaults keep an unbound raise legal. AckIn's second argument
  // is the cumulative acknowledgment number.
  Event<void(TcpConn*)> TcpSegmentOut;
  Event<void(TcpConn*, uint64_t)> TcpAckIn;
  Event<void(TcpConn*)> TcpTimer;

  void AttachWire(Wire* wire) { wire_ = wire; }
  Wire* wire() const { return wire_; }

  // Transmit onto the attached wire.
  void Transmit(const Packet& packet);

  // Wire delivery entry: raises the Ethernet event chain synchronously.
  void Receive(Packet packet);

  uint64_t rx_packets() const { return rx_; }
  uint64_t tx_packets() const { return tx_; }
  uint64_t dropped_packets() const { return dropped_; }
  uint64_t tx_dropped_packets() const { return tx_dropped_; }
  uint64_t checksum_drops() const { return checksum_drops_; }
  uint64_t udp_checksum_drops() const { return udp_checksum_drops_; }

  // The wire-transmit binding: the target for imposed outbound-policy
  // guards (firewalling, rate limiting).
  const BindingHandle& transmit_binding() const { return transmit_binding_; }

 private:
  static bool IpInput(Host* host, Packet* packet);
  static bool UdpInput(Host* host, Packet* packet);
  static bool TcpInput(Host* host, Packet* packet);
  static bool Drop(Host* host, Packet* packet);
  static bool DropOutbound(Host* host, Packet* packet);
  static void TcpStackIdle(Host* host, TcpConn* conn);
  static void TcpStackIdleAck(Host* host, TcpConn* conn, uint64_t ack);
  static bool WireTransmit(Host* host, Packet* packet);
  static void ExportMetricsSource(void* ctx, std::ostream& os);

  std::string name_;
  uint32_t ip_;
  uint32_t trace_host_id_ = 0;
  Dispatcher* dispatcher_;
  Module module_;
  std::string credential_;
  Wire* wire_ = nullptr;
  BindingHandle transmit_binding_;
  uint64_t rx_ = 0;
  uint64_t tx_ = 0;
  uint64_t dropped_ = 0;
  uint64_t tx_dropped_ = 0;
  uint64_t checksum_drops_ = 0;
  uint64_t udp_checksum_drops_ = 0;
};

// A bound UDP endpoint: installs a port-guarded handler on the host's
// Udp.PacketArrived event (the Table 2 experimental subject).
class UdpSocket {
 public:
  using ReceiveFn = std::function<void(const Packet&)>;

  UdpSocket(Host& host, uint16_t port, ReceiveFn on_receive);
  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  void SendTo(uint32_t dst_ip, uint16_t dst_port,
              const std::string& payload);

  uint16_t port() const { return port_; }
  uint64_t received() const { return received_; }
  const BindingHandle& binding() const { return binding_; }

 private:
  static bool Input(UdpSocket* socket, Packet* packet);

  Host& host_;
  uint16_t port_;
  ReceiveFn on_receive_;
  BindingHandle binding_;
  uint64_t received_ = 0;
};

}  // namespace net
}  // namespace spin

#endif  // SRC_NET_HOST_H_
