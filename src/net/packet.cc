#include "src/net/packet.h"

#include "src/rt/panic.h"

namespace spin {
namespace net {
namespace {

void FillCommon(Packet& packet, uint32_t src_ip, uint32_t dst_ip,
                uint8_t proto, size_t total_len) {
  SPIN_ASSERT(total_len <= kMaxFrame);
  packet.len = static_cast<uint32_t>(total_len);
  packet.Put16(kEtherTypeOff, kEtherTypeIp);
  packet.data[kIpOff] = 0x45;  // IPv4, 20-byte header
  packet.Put16(kIpOff + 2, static_cast<uint16_t>(total_len - kIpOff));
  packet.data[kIpOff + 8] = 64;  // TTL
  packet.data[kIpProtoOff] = proto;
  packet.Put32(kIpSrcOff, src_ip);
  packet.Put32(kIpDstOff, dst_ip);
  StampIpChecksum(packet);
}

}  // namespace

uint16_t IpHeaderChecksum(const Packet& packet) {
  uint32_t sum = 0;
  for (size_t off = kIpOff; off < kIpOff + 20; off += 2) {
    if (off == kIpChecksumOff) {
      continue;  // the checksum field counts as zero
    }
    sum += packet.Get16(off);
  }
  while ((sum >> 16) != 0) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

void StampIpChecksum(Packet& packet) {
  packet.Put16(kIpChecksumOff, IpHeaderChecksum(packet));
}

bool VerifyIpChecksum(const Packet& packet) {
  return packet.Get16(kIpChecksumOff) == IpHeaderChecksum(packet);
}

uint16_t UdpChecksum(const Packet& packet) {
  uint32_t sum = 0;
  // Pseudo-header: src addr, dst addr, zero+protocol, UDP length.
  sum += packet.Get16(kIpSrcOff) + packet.Get16(kIpSrcOff + 2);
  sum += packet.Get16(kIpDstOff) + packet.Get16(kIpDstOff + 2);
  sum += kIpProtoUdp;
  uint16_t udp_len = packet.Get16(kUdpLenOff);
  sum += udp_len;
  // UDP header + payload, checksum field as zero, odd tail zero-padded.
  size_t end = kL4Off + udp_len;
  if (end > packet.len) {
    end = packet.len;  // truncated frame; checksum over what is present
  }
  for (size_t off = kL4Off; off + 1 < end; off += 2) {
    if (off == kUdpChecksumOff) {
      continue;
    }
    sum += packet.Get16(off);
  }
  if (((end - kL4Off) & 1) != 0) {
    sum += static_cast<uint16_t>(packet.data[end - 1] << 8);
  }
  while ((sum >> 16) != 0) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  uint16_t checksum = static_cast<uint16_t>(~sum);
  return checksum == 0 ? 0xffff : checksum;
}

void StampUdpChecksum(Packet& packet) {
  packet.Put16(kUdpChecksumOff, UdpChecksum(packet));
}

bool VerifyUdpChecksum(const Packet& packet) {
  uint16_t stored = packet.Get16(kUdpChecksumOff);
  return stored == 0 || stored == UdpChecksum(packet);
}

Packet MakeUdpPacket(uint32_t src_ip, uint32_t dst_ip, uint16_t src_port,
                     uint16_t dst_port, const std::string& payload) {
  Packet packet;
  size_t total = kUdpPayloadOff + payload.size();
  FillCommon(packet, src_ip, dst_ip, kIpProtoUdp, total);
  packet.Put16(kSrcPortOff, src_port);
  packet.Put16(kDstPortOff, dst_port);
  packet.Put16(kUdpLenOff, static_cast<uint16_t>(8 + payload.size()));
  std::memcpy(packet.data + kUdpPayloadOff, payload.data(), payload.size());
  StampUdpChecksum(packet);
  return packet;
}

Packet MakeTcpPacket(uint32_t src_ip, uint32_t dst_ip, uint16_t src_port,
                     uint16_t dst_port, uint32_t seq, uint32_t ack,
                     uint8_t flags, const std::string& payload) {
  Packet packet;
  size_t total = kTcpPayloadOff + payload.size();
  FillCommon(packet, src_ip, dst_ip, kIpProtoTcp, total);
  packet.Put16(kSrcPortOff, src_port);
  packet.Put16(kDstPortOff, dst_port);
  packet.Put32(kTcpSeqOff, seq);
  packet.Put32(kTcpAckOff, ack);
  packet.data[kL4Off + 12] = 5 << 4;  // data offset: 5 words
  packet.data[kTcpFlagsOff] = flags;
  std::memcpy(packet.data + kTcpPayloadOff, payload.data(), payload.size());
  return packet;
}

}  // namespace net
}  // namespace spin
