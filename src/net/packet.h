// Packets and header codecs (Ethernet / IPv4 / UDP / TCP).
//
// Headers live at fixed offsets in the raw frame so that micro-program
// guards can discriminate on them directly ("guards may discriminate on
// the UDP or TCP port destination field", §3.2) — the same property SPIN's
// packet-filter-style guards relied on.
#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace spin {
namespace net {

inline constexpr size_t kMaxFrame = 1514;

// Header offsets within the frame.
inline constexpr size_t kEtherDstOff = 0;
inline constexpr size_t kEtherSrcOff = 6;
inline constexpr size_t kEtherTypeOff = 12;
inline constexpr size_t kIpOff = 14;
inline constexpr size_t kIpProtoOff = kIpOff + 9;     // 23
inline constexpr size_t kIpSrcOff = kIpOff + 12;      // 26
inline constexpr size_t kIpDstOff = kIpOff + 16;      // 30
inline constexpr size_t kL4Off = kIpOff + 20;         // 34
inline constexpr size_t kSrcPortOff = kL4Off;         // 34
inline constexpr size_t kDstPortOff = kL4Off + 2;     // 36
inline constexpr size_t kUdpLenOff = kL4Off + 4;      // 38
inline constexpr size_t kUdpPayloadOff = kL4Off + 8;  // 42
inline constexpr size_t kTcpSeqOff = kL4Off + 4;      // 38
inline constexpr size_t kTcpAckOff = kL4Off + 8;      // 42
inline constexpr size_t kTcpFlagsOff = kL4Off + 13;   // 47
inline constexpr size_t kTcpPayloadOff = kL4Off + 20; // 54

inline constexpr uint16_t kEtherTypeIp = 0x0800;
inline constexpr uint8_t kIpProtoUdp = 17;
inline constexpr uint8_t kIpProtoTcp = 6;

// TCP flags.
inline constexpr uint8_t kTcpFin = 0x01;
inline constexpr uint8_t kTcpSyn = 0x02;
inline constexpr uint8_t kTcpAckFlag = 0x10;

// Maximum TCP segment payload per frame.
inline constexpr size_t kTcpMss = 1460;

struct Packet {
  uint8_t data[kMaxFrame] = {};
  uint32_t len = 0;

  // Big-endian field accessors.
  uint16_t Get16(size_t off) const {
    return static_cast<uint16_t>((data[off] << 8) | data[off + 1]);
  }
  void Put16(size_t off, uint16_t v) {
    data[off] = static_cast<uint8_t>(v >> 8);
    data[off + 1] = static_cast<uint8_t>(v);
  }
  uint32_t Get32(size_t off) const {
    return (static_cast<uint32_t>(data[off]) << 24) |
           (static_cast<uint32_t>(data[off + 1]) << 16) |
           (static_cast<uint32_t>(data[off + 2]) << 8) |
           static_cast<uint32_t>(data[off + 3]);
  }
  void Put32(size_t off, uint32_t v) {
    data[off] = static_cast<uint8_t>(v >> 24);
    data[off + 1] = static_cast<uint8_t>(v >> 16);
    data[off + 2] = static_cast<uint8_t>(v >> 8);
    data[off + 3] = static_cast<uint8_t>(v);
  }

  uint16_t ether_type() const { return Get16(kEtherTypeOff); }
  uint8_t ip_proto() const { return data[kIpProtoOff]; }
  uint32_t ip_src() const { return Get32(kIpSrcOff); }
  uint32_t ip_dst() const { return Get32(kIpDstOff); }
  uint16_t src_port() const { return Get16(kSrcPortOff); }
  uint16_t dst_port() const { return Get16(kDstPortOff); }
  uint32_t tcp_seq() const { return Get32(kTcpSeqOff); }
  uint32_t tcp_ack() const { return Get32(kTcpAckOff); }
  uint8_t tcp_flags() const { return data[kTcpFlagsOff]; }

  std::string UdpPayload() const {
    return std::string(reinterpret_cast<const char*>(data + kUdpPayloadOff),
                       len - kUdpPayloadOff);
  }
  std::string TcpPayload() const {
    return std::string(reinterpret_cast<const char*>(data + kTcpPayloadOff),
                       len - kTcpPayloadOff);
  }
};

// The value a 2-byte little-endian load of a big-endian port field yields;
// micro guards compare against this constant.
inline uint64_t PortFieldValue(uint16_t port) {
  return static_cast<uint64_t>(((port & 0xff) << 8) | (port >> 8));
}

inline constexpr size_t kIpChecksumOff = kIpOff + 10;  // 24
inline constexpr size_t kUdpChecksumOff = kL4Off + 6;  // 40

// RFC 791 ones-complement checksum over the 20-byte IP header.
uint16_t IpHeaderChecksum(const Packet& packet);

// Writes the header checksum (done by the packet builders).
void StampIpChecksum(Packet& packet);

// True when the stored checksum matches the header contents.
bool VerifyIpChecksum(const Packet& packet);

// RFC 768 UDP checksum: ones-complement sum over the pseudo-header
// (source/destination address, protocol, UDP length) and the UDP header +
// payload, with the checksum field taken as zero. A computed value of 0 is
// transmitted as 0xffff so that 0 can keep its RFC meaning of "no checksum
// supplied".
uint16_t UdpChecksum(const Packet& packet);

// Writes the UDP checksum (done by MakeUdpPacket and by any extension that
// rewrites the UDP payload in place, e.g. the compression extension).
void StampUdpChecksum(Packet& packet);

// True when the stored checksum matches the segment contents, or when the
// sender supplied none (field is 0).
bool VerifyUdpChecksum(const Packet& packet);

Packet MakeUdpPacket(uint32_t src_ip, uint32_t dst_ip, uint16_t src_port,
                     uint16_t dst_port, const std::string& payload);

Packet MakeTcpPacket(uint32_t src_ip, uint32_t dst_ip, uint16_t src_port,
                     uint16_t dst_port, uint32_t seq, uint32_t ack,
                     uint8_t flags, const std::string& payload);

}  // namespace net
}  // namespace spin

#endif  // SRC_NET_PACKET_H_
