// Micro-program interpreter: the portable execution path.
//
// Identical semantics to the JIT lowering in src/codegen/; the property
// tests in tests/codegen_jit_test.cc check the two agree on randomized
// programs.
#ifndef SRC_MICRO_INTERP_H_
#define SRC_MICRO_INTERP_H_

#include <cstdint>

#include "src/micro/program.h"

namespace spin {
namespace micro {

// Executes a validated program against `args[0..num_args)`. The caller must
// have run Validate(); Run assumes well-formedness (per SPIN's model where
// installation, not dispatch, is the checked boundary). When `steps` is
// non-null it receives the number of instructions executed — the
// measurement half of the verifier's termination-budget proof
// (tests assert steps <= VerifyResult::budget).
uint64_t Run(const Program& program, const uint64_t* args, int num_args,
             uint64_t* steps = nullptr);

}  // namespace micro
}  // namespace spin

#endif  // SRC_MICRO_INTERP_H_
