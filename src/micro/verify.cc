#include "src/micro/verify.h"

#include <algorithm>
#include <iterator>
#include <vector>

namespace spin {
namespace micro {

const char* VerifyStatusName(VerifyStatus status) {
  switch (status) {
    case VerifyStatus::kOk:
      return "ok";
    case VerifyStatus::kEmpty:
      return "empty program";
    case VerifyStatus::kTooLong:
      return "program exceeds instruction cap";
    case VerifyStatus::kBadOpcode:
      return "unknown opcode";
    case VerifyStatus::kBadRegister:
      return "register index out of range";
    case VerifyStatus::kBadArgIndex:
      return "argument index out of range";
    case VerifyStatus::kBadWidth:
      return "bad memory width";
    case VerifyStatus::kBadShift:
      return "shift amount out of range";
    case VerifyStatus::kStore:
      return "store instruction";
    case VerifyStatus::kAddressOp:
      return "address-forming load";
    case VerifyStatus::kBackwardJump:
      return "backward jump";
    case VerifyStatus::kJumpOutOfRange:
      return "jump out of range";
    case VerifyStatus::kMissingTerminator:
      return "execution can fall off the end";
    case VerifyStatus::kBudgetExceeded:
      return "execution budget exceeded";
  }
  return "<bad>";
}

static_assert(static_cast<size_t>(VerifyStatus::kBudgetExceeded) + 1 ==
                  kNumVerifyStatuses,
              "kNumVerifyStatuses must track the VerifyStatus enum");

VerifyLimits WireGuardLimits() {
  VerifyLimits limits;
  limits.max_insns = 256;   // == remote::kMaxWireGuardInsns
  limits.max_budget = 256;
  limits.allow_memory_reads = false;
  limits.allow_stores = false;
  return limits;
}

namespace {

// Per-opcode admission attributes. Indexed by the opcode's numeric value;
// the static_assert below is the compile-time tripwire: adding an Op
// without extending this table (and the name tables in program.cc) fails
// the build instead of silently admitting the new opcode.
struct OpInfo {
  Op op;                 // must equal its own index (checked at startup)
  bool uses_dst;
  bool uses_a;
  bool uses_b;
  bool is_store;
  bool is_memory_read;   // address-forming load
  bool is_jump;          // imm is a forward instruction index
  bool is_terminator;    // execution cannot fall through
  bool falls_through;    // execution may continue at pc+1
};

constexpr OpInfo kOpTable[] = {
    //                         dst    a      b      store  mread  jump   term   falls
    {Op::kLoadArg,             true,  false, false, false, false, false, false, true},
    {Op::kLoadImm,             true,  false, false, false, false, false, false, true},
    {Op::kLoadGlobal,          true,  false, false, false, true,  false, false, true},
    {Op::kLoadField,           true,  true,  false, false, true,  false, false, true},
    {Op::kStoreGlobal,         false, true,  false, true,  false, false, false, true},
    {Op::kStoreField,          false, true,  true,  true,  false, false, false, true},
    {Op::kMov,                 true,  true,  false, false, false, false, false, true},
    {Op::kAdd,                 true,  true,  true,  false, false, false, false, true},
    {Op::kSub,                 true,  true,  true,  false, false, false, false, true},
    {Op::kAnd,                 true,  true,  true,  false, false, false, false, true},
    {Op::kOr,                  true,  true,  true,  false, false, false, false, true},
    {Op::kXor,                 true,  true,  true,  false, false, false, false, true},
    {Op::kShlImm,              true,  true,  false, false, false, false, false, true},
    {Op::kShrImm,              true,  true,  false, false, false, false, false, true},
    {Op::kCmpEq,               true,  true,  true,  false, false, false, false, true},
    {Op::kCmpNe,               true,  true,  true,  false, false, false, false, true},
    {Op::kCmpLtU,              true,  true,  true,  false, false, false, false, true},
    {Op::kCmpLeU,              true,  true,  true,  false, false, false, false, true},
    {Op::kCmpLtS,              true,  true,  true,  false, false, false, false, true},
    {Op::kCmpLeS,              true,  true,  true,  false, false, false, false, true},
    {Op::kNot,                 true,  true,  false, false, false, false, false, true},
    {Op::kJz,                  false, true,  false, false, false, true,  false, true},
    {Op::kJmp,                 false, false, false, false, false, true,  true,  false},
    {Op::kRet,                 false, true,  false, false, false, false, true,  false},
    {Op::kRetImm,              false, false, false, false, false, false, true,  false},
};

static_assert(std::size(kOpTable) == kNumOps,
              "kOpTable must cover every Op; a new opcode needs an "
              "admission row here");

constexpr bool OpTableIndexed() {
  for (size_t i = 0; i < std::size(kOpTable); ++i) {
    if (static_cast<size_t>(kOpTable[i].op) != i) {
      return false;
    }
  }
  return true;
}

static_assert(OpTableIndexed(),
              "kOpTable rows must appear in opcode order");

}  // namespace

VerifyResult Verify(const Program& program, const VerifyLimits& limits) {
  VerifyResult result;
  const std::vector<Insn>& code = program.code();
  const size_t n = code.size();
  auto fail = [&result](VerifyStatus status, size_t pc) {
    result.status = status;
    result.fault_pc = pc;
    return result;
  };

  if (n == 0) {
    return fail(VerifyStatus::kEmpty, 0);
  }
  if (n > limits.max_insns) {
    return fail(VerifyStatus::kTooLong, n);
  }

  // Forward sweep: per-instruction bounds. Every check consults only the
  // instruction itself (and its index), so this is one O(n) pass.
  for (size_t pc = 0; pc < n; ++pc) {
    const Insn& insn = code[pc];
    const uint8_t opcode = static_cast<uint8_t>(insn.op);
    if (opcode >= kNumOps) {
      return fail(VerifyStatus::kBadOpcode, pc);
    }
    const OpInfo& info = kOpTable[opcode];
    if (info.uses_dst && insn.dst >= kNumRegs) {
      return fail(VerifyStatus::kBadRegister, pc);
    }
    if (info.uses_a && insn.a >= kNumRegs) {
      return fail(VerifyStatus::kBadRegister, pc);
    }
    if (info.uses_b && insn.b >= kNumRegs) {
      return fail(VerifyStatus::kBadRegister, pc);
    }
    if (info.is_store && (!limits.allow_stores || program.functional())) {
      return fail(VerifyStatus::kStore, pc);
    }
    if (info.is_memory_read && !limits.allow_memory_reads) {
      return fail(VerifyStatus::kAddressOp, pc);
    }
    switch (insn.op) {
      case Op::kLoadArg:
        if (insn.imm >= static_cast<uint64_t>(program.num_args()) ||
            insn.imm >= kMaxArgs) {
          return fail(VerifyStatus::kBadArgIndex, pc);
        }
        break;
      case Op::kLoadGlobal:
      case Op::kLoadField:
        if (insn.b > 3) {
          return fail(VerifyStatus::kBadWidth, pc);
        }
        break;
      case Op::kStoreGlobal:
        if (insn.b > 3) {
          return fail(VerifyStatus::kBadWidth, pc);
        }
        break;
      case Op::kStoreField:
        // Width rides in dst for stores through a register base.
        if (insn.dst > 3) {
          return fail(VerifyStatus::kBadWidth, pc);
        }
        break;
      case Op::kShlImm:
      case Op::kShrImm:
        if (insn.imm >= 64) {
          return fail(VerifyStatus::kBadShift, pc);
        }
        break;
      case Op::kJz:
      case Op::kJmp:
        // Forward-only control flow is the termination argument: a target
        // that does not strictly advance would permit a loop.
        if (insn.imm <= pc) {
          return fail(VerifyStatus::kBackwardJump, pc);
        }
        if (insn.imm >= n) {
          return fail(VerifyStatus::kJumpOutOfRange, pc);
        }
        break;
      default:
        break;
    }
    // Falling off the end is unreachable code at best and an interpreter
    // panic at worst; demand a terminator on the fall-through edge.
    if (pc + 1 == n && info.falls_through) {
      return fail(VerifyStatus::kMissingTerminator, pc);
    }
  }

  // Backward sweep: longest execution path through the instruction DAG.
  // Jump targets are strictly greater than their sources (checked above),
  // so iterating from the last instruction down visits every successor
  // before its predecessors — longest path in O(n) with no fixpoint.
  std::vector<uint32_t> steps(n, 0);
  for (size_t i = n; i-- > 0;) {
    const Insn& insn = code[i];
    const OpInfo& info = kOpTable[static_cast<uint8_t>(insn.op)];
    uint32_t longest = 0;
    if (info.falls_through && i + 1 < n) {
      longest = steps[i + 1];
    }
    if (info.is_jump) {
      longest = std::max(longest, steps[insn.imm]);
    }
    steps[i] = 1 + longest;
  }
  result.budget = steps[0];
  if (result.budget > limits.max_budget) {
    return fail(VerifyStatus::kBudgetExceeded, n);
  }
  return result;
}

}  // namespace micro
}  // namespace spin
