#include "src/micro/program.h"

#include <cstdio>

#include "src/rt/panic.h"

namespace spin {
namespace micro {

const char* OpName(Op op) {
  switch (op) {
    case Op::kLoadArg:
      return "load_arg";
    case Op::kLoadImm:
      return "load_imm";
    case Op::kLoadGlobal:
      return "load_global";
    case Op::kLoadField:
      return "load_field";
    case Op::kStoreGlobal:
      return "store_global";
    case Op::kStoreField:
      return "store_field";
    case Op::kMov:
      return "mov";
    case Op::kAdd:
      return "add";
    case Op::kSub:
      return "sub";
    case Op::kAnd:
      return "and";
    case Op::kOr:
      return "or";
    case Op::kXor:
      return "xor";
    case Op::kShlImm:
      return "shl";
    case Op::kShrImm:
      return "shr";
    case Op::kCmpEq:
      return "cmp_eq";
    case Op::kCmpNe:
      return "cmp_ne";
    case Op::kCmpLtU:
      return "cmp_ltu";
    case Op::kCmpLeU:
      return "cmp_leu";
    case Op::kCmpLtS:
      return "cmp_lts";
    case Op::kCmpLeS:
      return "cmp_les";
    case Op::kNot:
      return "not";
    case Op::kJz:
      return "jz";
    case Op::kJmp:
      return "jmp";
    case Op::kRet:
      return "ret";
    case Op::kRetImm:
      return "ret_imm";
  }
  return "<bad>";
}

static_assert(static_cast<size_t>(Op::kRetImm) + 1 == kNumOps,
              "kNumOps must track the Op enum; a new opcode also needs an "
              "OpName case above and an admission row in verify.cc");

const char* ValidateStatusName(ValidateStatus status) {
  switch (status) {
    case ValidateStatus::kOk:
      return "ok";
    case ValidateStatus::kEmpty:
      return "empty program";
    case ValidateStatus::kBadRegister:
      return "register index out of range";
    case ValidateStatus::kBadArgIndex:
      return "argument index out of range";
    case ValidateStatus::kBadWidth:
      return "bad memory width";
    case ValidateStatus::kBadShift:
      return "shift amount out of range";
    case ValidateStatus::kBackwardJump:
      return "backward jump";
    case ValidateStatus::kJumpOutOfRange:
      return "jump out of range";
    case ValidateStatus::kMissingTerminator:
      return "program does not end with ret";
    case ValidateStatus::kImpureFunctional:
      return "store instruction in FUNCTIONAL program";
  }
  return "<bad>";
}

static_assert(static_cast<size_t>(ValidateStatus::kImpureFunctional) + 1 ==
                  kNumValidateStatuses,
              "kNumValidateStatuses must track the ValidateStatus enum; a "
              "new status also needs a ValidateStatusName case above");

Program::Program(std::vector<Insn> code, int num_args, bool functional)
    : code_(std::move(code)), num_args_(num_args), functional_(functional) {}

namespace {

bool UsesDst(Op op) {
  switch (op) {
    case Op::kStoreGlobal:
    case Op::kStoreField:
    case Op::kJz:
    case Op::kJmp:
    case Op::kRet:
    case Op::kRetImm:
      return false;
    default:
      return true;
  }
}

bool UsesA(Op op) {
  switch (op) {
    case Op::kLoadArg:
    case Op::kLoadImm:
    case Op::kLoadGlobal:
    case Op::kJmp:
    case Op::kRetImm:
      return false;
    default:
      return true;
  }
}

bool UsesB(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kCmpEq:
    case Op::kCmpNe:
    case Op::kCmpLtU:
    case Op::kCmpLeU:
    case Op::kCmpLtS:
    case Op::kCmpLeS:
    case Op::kStoreField:
      return true;
    default:
      return false;
  }
}

bool IsWidthOp(Op op) {
  switch (op) {
    case Op::kLoadGlobal:
    case Op::kLoadField:
    case Op::kStoreGlobal:
      return true;
    default:
      return false;
  }
}

}  // namespace

ValidateStatus Program::Validate() const {
  if (code_.empty()) {
    return ValidateStatus::kEmpty;
  }
  for (size_t i = 0; i < code_.size(); ++i) {
    const Insn& insn = code_[i];
    if (UsesDst(insn.op) && insn.dst >= kNumRegs) {
      return ValidateStatus::kBadRegister;
    }
    if (UsesA(insn.op) && insn.a >= kNumRegs) {
      return ValidateStatus::kBadRegister;
    }
    if (UsesB(insn.op) && insn.b >= kNumRegs) {
      return ValidateStatus::kBadRegister;
    }
    switch (insn.op) {
      case Op::kLoadArg:
        if (insn.imm >= static_cast<uint64_t>(num_args_) ||
            insn.imm >= kMaxArgs) {
          return ValidateStatus::kBadArgIndex;
        }
        break;
      case Op::kLoadGlobal:
      case Op::kLoadField:
        if (insn.b > 3) {  // width exponent: 1, 2, 4, or 8 bytes
          return ValidateStatus::kBadWidth;
        }
        break;
      case Op::kStoreGlobal:
      case Op::kStoreField:
        if (functional_) {
          return ValidateStatus::kImpureFunctional;
        }
        if (insn.op == Op::kStoreGlobal && insn.b > 3) {
          return ValidateStatus::kBadWidth;
        }
        // kStoreField uses b as the source register; width rides in dst.
        if (insn.op == Op::kStoreField && insn.dst > 3) {
          return ValidateStatus::kBadWidth;
        }
        break;
      case Op::kShlImm:
      case Op::kShrImm:
        if (insn.imm >= 64) {
          return ValidateStatus::kBadShift;
        }
        break;
      case Op::kJz:
      case Op::kJmp:
        if (insn.imm <= i) {
          return ValidateStatus::kBackwardJump;
        }
        if (insn.imm >= code_.size()) {
          return ValidateStatus::kJumpOutOfRange;
        }
        break;
      default:
        break;
    }
  }
  Op last = code_.back().op;
  if (last != Op::kRet && last != Op::kRetImm) {
    return ValidateStatus::kMissingTerminator;
  }
  (void)IsWidthOp;
  return ValidateStatus::kOk;
}

uint8_t Program::UndefinedReads() const {
  size_t n = code_.size();
  // in[pc]: bitmask of registers definitely written on every path to pc.
  // Jumps are forward-only, so one in-order pass computes the meet.
  std::vector<uint16_t> in(n + 1, 0xFFFF);
  if (n == 0) {
    return 0;
  }
  in[0] = 0;
  uint8_t undefined = 0;
  for (size_t pc = 0; pc < n; ++pc) {
    const Insn& insn = code_[pc];
    uint16_t defined = in[pc];
    if (UsesA(insn.op) && ((defined >> insn.a) & 1) == 0) {
      undefined |= static_cast<uint8_t>(1u << insn.a);
    }
    if (UsesB(insn.op) && ((defined >> insn.b) & 1) == 0) {
      undefined |= static_cast<uint8_t>(1u << insn.b);
    }
    uint16_t out = defined;
    if (UsesDst(insn.op)) {
      out |= static_cast<uint16_t>(1u << insn.dst);
    }
    bool falls = insn.op != Op::kJmp && insn.op != Op::kRet &&
                 insn.op != Op::kRetImm;
    if (falls && pc + 1 <= n) {
      in[pc + 1] &= out;
    }
    if ((insn.op == Op::kJz || insn.op == Op::kJmp) && insn.imm <= n) {
      in[insn.imm] &= out;
    }
  }
  return undefined;
}

std::string Program::ToString() const {
  std::string out;
  char line[128];
  for (size_t i = 0; i < code_.size(); ++i) {
    const Insn& insn = code_[i];
    std::snprintf(line, sizeof(line),
                  "%3zu: %-12s dst=%u a=%u b=%u imm=0x%llx\n", i,
                  OpName(insn.op), insn.dst, insn.a, insn.b,
                  static_cast<unsigned long long>(insn.imm));
    out += line;
  }
  return out;
}

// --- Builder ---------------------------------------------------------------

ProgramBuilder& ProgramBuilder::Emit(Op op, uint8_t dst, uint8_t a, uint8_t b,
                                     uint64_t imm) {
  code_.push_back(Insn{op, dst, a, b, imm});
  return *this;
}

namespace {

uint8_t WidthExp(int width) {
  switch (width) {
    case 1:
      return 0;
    case 2:
      return 1;
    case 4:
      return 2;
    case 8:
      return 3;
    default:
      SPIN_PANIC("bad memory width %d", width);
  }
}

}  // namespace

ProgramBuilder& ProgramBuilder::LoadArg(int dst, int arg) {
  return Emit(Op::kLoadArg, dst, 0, 0, static_cast<uint64_t>(arg));
}
ProgramBuilder& ProgramBuilder::LoadImm(int dst, uint64_t imm) {
  return Emit(Op::kLoadImm, dst, 0, 0, imm);
}
ProgramBuilder& ProgramBuilder::LoadGlobal(int dst, const void* addr,
                                           int width) {
  return Emit(Op::kLoadGlobal, dst, 0, WidthExp(width),
              reinterpret_cast<uintptr_t>(addr));
}
ProgramBuilder& ProgramBuilder::LoadField(int dst, int base, uint64_t offset,
                                          int width) {
  return Emit(Op::kLoadField, dst, static_cast<uint8_t>(base),
              WidthExp(width), offset);
}
ProgramBuilder& ProgramBuilder::StoreGlobal(const void* addr, int src,
                                            int width) {
  return Emit(Op::kStoreGlobal, 0, static_cast<uint8_t>(src), WidthExp(width),
              reinterpret_cast<uintptr_t>(addr));
}
ProgramBuilder& ProgramBuilder::StoreField(int base, uint64_t offset, int src,
                                           int width) {
  // dst carries the width exponent; a = base pointer reg, b = source reg.
  return Emit(Op::kStoreField, WidthExp(width), static_cast<uint8_t>(base),
              static_cast<uint8_t>(src), offset);
}
ProgramBuilder& ProgramBuilder::Mov(int dst, int src) {
  return Emit(Op::kMov, dst, static_cast<uint8_t>(src), 0, 0);
}
ProgramBuilder& ProgramBuilder::Add(int dst, int a, int b) {
  return Emit(Op::kAdd, dst, static_cast<uint8_t>(a), static_cast<uint8_t>(b), 0);
}
ProgramBuilder& ProgramBuilder::Sub(int dst, int a, int b) {
  return Emit(Op::kSub, dst, static_cast<uint8_t>(a), static_cast<uint8_t>(b), 0);
}
ProgramBuilder& ProgramBuilder::And(int dst, int a, int b) {
  return Emit(Op::kAnd, dst, static_cast<uint8_t>(a), static_cast<uint8_t>(b), 0);
}
ProgramBuilder& ProgramBuilder::Or(int dst, int a, int b) {
  return Emit(Op::kOr, dst, static_cast<uint8_t>(a), static_cast<uint8_t>(b), 0);
}
ProgramBuilder& ProgramBuilder::Xor(int dst, int a, int b) {
  return Emit(Op::kXor, dst, static_cast<uint8_t>(a), static_cast<uint8_t>(b), 0);
}
ProgramBuilder& ProgramBuilder::ShlImm(int dst, int a, int amount) {
  return Emit(Op::kShlImm, dst, static_cast<uint8_t>(a), 0,
              static_cast<uint64_t>(amount));
}
ProgramBuilder& ProgramBuilder::ShrImm(int dst, int a, int amount) {
  return Emit(Op::kShrImm, dst, static_cast<uint8_t>(a), 0,
              static_cast<uint64_t>(amount));
}
ProgramBuilder& ProgramBuilder::CmpEq(int dst, int a, int b) {
  return Emit(Op::kCmpEq, dst, static_cast<uint8_t>(a), static_cast<uint8_t>(b), 0);
}
ProgramBuilder& ProgramBuilder::CmpNe(int dst, int a, int b) {
  return Emit(Op::kCmpNe, dst, static_cast<uint8_t>(a), static_cast<uint8_t>(b), 0);
}
ProgramBuilder& ProgramBuilder::CmpLtU(int dst, int a, int b) {
  return Emit(Op::kCmpLtU, dst, static_cast<uint8_t>(a), static_cast<uint8_t>(b), 0);
}
ProgramBuilder& ProgramBuilder::CmpLeU(int dst, int a, int b) {
  return Emit(Op::kCmpLeU, dst, static_cast<uint8_t>(a), static_cast<uint8_t>(b), 0);
}
ProgramBuilder& ProgramBuilder::CmpLtS(int dst, int a, int b) {
  return Emit(Op::kCmpLtS, dst, static_cast<uint8_t>(a), static_cast<uint8_t>(b), 0);
}
ProgramBuilder& ProgramBuilder::CmpLeS(int dst, int a, int b) {
  return Emit(Op::kCmpLeS, dst, static_cast<uint8_t>(a), static_cast<uint8_t>(b), 0);
}
ProgramBuilder& ProgramBuilder::Not(int dst, int a) {
  return Emit(Op::kNot, dst, static_cast<uint8_t>(a), 0, 0);
}
size_t ProgramBuilder::Jz(int a) {
  Emit(Op::kJz, 0, static_cast<uint8_t>(a), 0, 0);
  return code_.size() - 1;
}
size_t ProgramBuilder::Jmp() {
  Emit(Op::kJmp, 0, 0, 0, 0);
  return code_.size() - 1;
}
void ProgramBuilder::PatchJumpTarget(size_t jump_index) {
  SPIN_ASSERT(jump_index < code_.size());
  code_[jump_index].imm = code_.size();
}
ProgramBuilder& ProgramBuilder::Ret(int a) {
  return Emit(Op::kRet, 0, static_cast<uint8_t>(a), 0, 0);
}
ProgramBuilder& ProgramBuilder::RetImm(uint64_t imm) {
  return Emit(Op::kRetImm, 0, 0, 0, imm);
}

Program ProgramBuilder::Build() && {
  return Program(std::move(code_), num_args_, functional_);
}

// --- Canned programs -------------------------------------------------------

Program GuardGlobalEq(const uint64_t* addr, uint64_t value) {
  return std::move(ProgramBuilder(0, /*functional=*/true)
                       .LoadGlobal(0, addr, 8)
                       .LoadImm(1, value)
                       .CmpEq(2, 0, 1)
                       .Ret(2))
      .Build();
}

Program GuardArgFieldEq(int num_args, int arg, uint64_t offset, int width,
                        uint64_t mask, uint64_t value) {
  ProgramBuilder b(num_args, /*functional=*/true);
  b.LoadArg(0, arg).LoadField(1, 0, offset, width);
  if (mask != ~0ull) {
    b.LoadImm(2, mask).And(1, 1, 2);
  }
  b.LoadImm(3, value).CmpEq(4, 1, 3).Ret(4);
  return std::move(b).Build();
}

Program ReturnConst(int num_args, uint64_t value, bool functional) {
  return std::move(ProgramBuilder(num_args, functional).RetImm(value)).Build();
}

Program IncrementGlobal(uint64_t* addr, int num_args) {
  return std::move(ProgramBuilder(num_args, /*functional=*/false)
                       .LoadGlobal(0, addr, 8)
                       .LoadImm(1, 1)
                       .Add(0, 0, 1)
                       .StoreGlobal(addr, 0, 8)
                       .RetImm(0))
      .Build();
}

}  // namespace micro
}  // namespace spin
