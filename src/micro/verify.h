// BPF-style admission verification for untrusted micro-programs.
//
// Program::Validate() answers "is this program well-formed enough to
// install?" for programs built locally by trusted callers. Verify() answers
// a stricter question for programs that arrive as *data* — most importantly
// imposed guards received over the wire in a BindReply (§2.5 across the
// wire): before such a program may execute, let alone be compiled to native
// code, the receiver must prove
//
//   - every byte names a real instruction (the decoder is structural only;
//     opcode admission happens here),
//   - every register and argument access is in bounds for the program's
//     declared arity,
//   - control flow is forward-only and in range, which together with the
//     instruction-count cap is a proof of termination: the longest path
//     through the instruction DAG bounds the steps any execution takes,
//   - the program is pure: no stores, and (for wire programs) no
//     address-forming loads at all — an absolute address or pointer
//     dereference is meaningless, and hostile, in the receiver's address
//     space.
//
// The pass is linear in the instruction count: one forward sweep for the
// per-instruction checks, one backward sweep for the longest-path budget
// (legal because jumps only go forward). A program that passes is safe to
// hand to the interpreter or to CompileMicro with no per-raise checks —
// the eBPF verify-then-JIT contract.
#ifndef SRC_MICRO_VERIFY_H_
#define SRC_MICRO_VERIFY_H_

#include <cstddef>
#include <cstdint>

#include "src/micro/program.h"

namespace spin {
namespace micro {

enum class VerifyStatus : uint8_t {
  kOk,
  kEmpty,             // no instructions
  kTooLong,           // instruction count exceeds the admission cap
  kBadOpcode,         // opcode byte does not name an instruction
  kBadRegister,       // register operand >= kNumRegs
  kBadArgIndex,       // payload read outside the declared arity
  kBadWidth,          // memory width exponent not in {0,1,2,3}
  kBadShift,          // shift amount >= 64
  kStore,             // store instruction (impure)
  kAddressOp,         // address-forming load (absolute or pointer-relative)
  kBackwardJump,      // jump target <= its own index (a loop attempt)
  kJumpOutOfRange,    // jump target beyond the last instruction
  kMissingTerminator, // a path can fall off the end of the program
  kBudgetExceeded,    // longest execution path exceeds the step budget
};

inline constexpr size_t kNumVerifyStatuses =
    static_cast<size_t>(VerifyStatus::kBudgetExceeded) + 1;

const char* VerifyStatusName(VerifyStatus status);

// Admission policy knobs. The defaults are the wire-guard policy: bounded
// size, no memory access of any kind, purity required.
struct VerifyLimits {
  size_t max_insns = 256;   // reject longer programs outright
  size_t max_budget = 256;  // cap on the longest execution path
  // Allow kLoadGlobal / kLoadField. Off for wire programs (addresses do
  // not cross the wire); on when admitting locally built guards whose
  // loads reference the installer's own memory.
  bool allow_memory_reads = false;
  // Allow stores. Never on for guards; exists so handlers built as
  // micro-programs can reuse the same pass for everything but purity.
  bool allow_stores = false;
};

// The wire admission policy for imposed guards in a BindReply.
VerifyLimits WireGuardLimits();

struct VerifyResult {
  VerifyStatus status = VerifyStatus::kOk;
  // Index of the offending instruction for per-insn failures; the program
  // size for whole-program failures (kEmpty, kTooLong, kBudgetExceeded).
  size_t fault_pc = 0;
  // Longest execution path in instructions — the program's declared step
  // budget. Valid only when status == kOk; every run of an admitted
  // program terminates within this many interpreter steps.
  size_t budget = 0;

  bool ok() const { return status == VerifyStatus::kOk; }
};

// Single linear admission pass; O(code().size()) time and space.
VerifyResult Verify(const Program& program, const VerifyLimits& limits);

inline VerifyResult Verify(const Program& program) {
  return Verify(program, VerifyLimits{});
}

}  // namespace micro
}  // namespace spin

#endif  // SRC_MICRO_VERIFY_H_
