#include "src/micro/pattern.h"

namespace spin {
namespace micro {

bool MatchFieldEq(const Program& prog, FieldEqPattern* out) {
  const std::vector<Insn>& code = prog.code();
  // Two accepted shapes:
  //   5 insns: LoadArg, LoadField, LoadImm, CmpEq, Ret        (mask = ~0)
  //   7 insns: LoadArg, LoadField, LoadImm, And, LoadImm, CmpEq, Ret
  bool masked;
  if (code.size() == 5) {
    masked = false;
  } else if (code.size() == 7) {
    masked = true;
  } else {
    return false;
  }

  const Insn& load_arg = code[0];
  const Insn& load_field = code[1];
  if (load_arg.op != Op::kLoadArg || load_field.op != Op::kLoadField ||
      load_field.a != load_arg.dst) {
    return false;
  }

  uint8_t field_reg = load_field.dst;
  uint64_t mask = ~0ull;
  size_t next = 2;
  if (masked) {
    const Insn& mask_imm = code[2];
    const Insn& and_insn = code[3];
    if (mask_imm.op != Op::kLoadImm || and_insn.op != Op::kAnd) {
      return false;
    }
    // field &= mask, in either operand order.
    bool ordered = and_insn.a == field_reg && and_insn.b == mask_imm.dst;
    bool swapped = and_insn.b == field_reg && and_insn.a == mask_imm.dst;
    if (!ordered && !swapped) {
      return false;
    }
    mask = mask_imm.imm;
    field_reg = and_insn.dst;
    next = 4;
  }

  const Insn& value_imm = code[next];
  const Insn& cmp = code[next + 1];
  const Insn& ret = code[next + 2];
  if (value_imm.op != Op::kLoadImm || cmp.op != Op::kCmpEq ||
      ret.op != Op::kRet || ret.a != cmp.dst) {
    return false;
  }
  bool ordered = cmp.a == field_reg && cmp.b == value_imm.dst;
  bool swapped = cmp.b == field_reg && cmp.a == value_imm.dst;
  if (!ordered && !swapped) {
    return false;
  }
  // The immediate register must not alias the field register (the compare
  // would then be trivially true/false rather than a field test).
  if (value_imm.dst == field_reg) {
    return false;
  }

  if (out != nullptr) {
    out->arg = static_cast<int>(load_arg.imm);
    out->offset = load_field.imm;
    out->width = static_cast<uint8_t>(1u << load_field.b);
    out->mask = mask;
    out->value = value_imm.imm;
  }
  return true;
}

}  // namespace micro
}  // namespace spin
