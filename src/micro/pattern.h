// Canonical-guard pattern matching.
//
// §3.2: "we presently do not optimize the guard decision tree, which would
// be effective for the port comparison required by this example. We are
// currently working on a strategy by which this type of guard optimization
// can be easily expressed." This module is that strategy: guards expressed
// as micro-programs are analyzable, so the dispatcher can recognize the
// demultiplexing shape
//     (load(args[arg] + offset, width) & mask) == value
// and compile a group of such guards into a decision tree (see
// codegen::StubTree) instead of a linear evaluation chain.
#ifndef SRC_MICRO_PATTERN_H_
#define SRC_MICRO_PATTERN_H_

#include <cstdint>

#include "src/micro/program.h"

namespace spin {
namespace micro {

struct FieldEqPattern {
  int arg = 0;            // which event argument holds the base pointer
  uint64_t offset = 0;    // byte offset of the field
  uint8_t width = 0;      // field width in bytes (1, 2, 4, 8)
  uint64_t mask = ~0ull;  // applied after the (zero-extended) load
  uint64_t value = 0;     // comparison constant

  // True when two patterns discriminate on the same field (everything but
  // the value agrees) — the grouping condition for tree construction.
  bool SameField(const FieldEqPattern& other) const {
    return arg == other.arg && offset == other.offset &&
           width == other.width && mask == other.mask;
  }
};

// Structurally matches `prog` against the canonical field-equality shape
// (the GuardArgFieldEq family, register-agnostic but dataflow-exact).
// Returns true and fills `out` on a match.
bool MatchFieldEq(const Program& prog, FieldEqPattern* out);

}  // namespace micro
}  // namespace spin

#endif  // SRC_MICRO_PATTERN_H_
