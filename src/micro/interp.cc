#include "src/micro/interp.h"

#include <cstring>

#include "src/rt/panic.h"

namespace spin {
namespace micro {
namespace {

uint64_t LoadWidth(const void* addr, int width_exp) {
  uint64_t out = 0;
  std::memcpy(&out, addr, size_t{1} << width_exp);
  return out;  // little-endian zero-extension
}

void StoreWidth(void* addr, uint64_t value, int width_exp) {
  std::memcpy(addr, &value, size_t{1} << width_exp);
}

}  // namespace

uint64_t Run(const Program& program, const uint64_t* args, int num_args,
             uint64_t* steps) {
  uint64_t r[kNumRegs] = {};
  const std::vector<Insn>& code = program.code();
  SPIN_DCHECK(num_args >= program.num_args());
  (void)num_args;
  uint64_t executed = 0;
  size_t pc = 0;
  while (pc < code.size()) {
    const Insn& insn = code[pc];
    ++executed;
    if (steps != nullptr) {
      *steps = executed;
    }
    switch (insn.op) {
      case Op::kLoadArg:
        r[insn.dst] = args[insn.imm];
        break;
      case Op::kLoadImm:
        r[insn.dst] = insn.imm;
        break;
      case Op::kLoadGlobal:
        r[insn.dst] = LoadWidth(
            reinterpret_cast<const void*>(static_cast<uintptr_t>(insn.imm)),
            insn.b);
        break;
      case Op::kLoadField:
        r[insn.dst] = LoadWidth(
            reinterpret_cast<const void*>(
                static_cast<uintptr_t>(r[insn.a] + insn.imm)),
            insn.b);
        break;
      case Op::kStoreGlobal:
        StoreWidth(reinterpret_cast<void*>(static_cast<uintptr_t>(insn.imm)),
                   r[insn.a], insn.b);
        break;
      case Op::kStoreField:
        StoreWidth(reinterpret_cast<void*>(
                       static_cast<uintptr_t>(r[insn.a] + insn.imm)),
                   r[insn.b], insn.dst);
        break;
      case Op::kMov:
        r[insn.dst] = r[insn.a];
        break;
      case Op::kAdd:
        r[insn.dst] = r[insn.a] + r[insn.b];
        break;
      case Op::kSub:
        r[insn.dst] = r[insn.a] - r[insn.b];
        break;
      case Op::kAnd:
        r[insn.dst] = r[insn.a] & r[insn.b];
        break;
      case Op::kOr:
        r[insn.dst] = r[insn.a] | r[insn.b];
        break;
      case Op::kXor:
        r[insn.dst] = r[insn.a] ^ r[insn.b];
        break;
      case Op::kShlImm:
        r[insn.dst] = r[insn.a] << insn.imm;
        break;
      case Op::kShrImm:
        r[insn.dst] = r[insn.a] >> insn.imm;
        break;
      case Op::kCmpEq:
        r[insn.dst] = r[insn.a] == r[insn.b] ? 1 : 0;
        break;
      case Op::kCmpNe:
        r[insn.dst] = r[insn.a] != r[insn.b] ? 1 : 0;
        break;
      case Op::kCmpLtU:
        r[insn.dst] = r[insn.a] < r[insn.b] ? 1 : 0;
        break;
      case Op::kCmpLeU:
        r[insn.dst] = r[insn.a] <= r[insn.b] ? 1 : 0;
        break;
      case Op::kCmpLtS:
        r[insn.dst] = static_cast<int64_t>(r[insn.a]) <
                              static_cast<int64_t>(r[insn.b])
                          ? 1
                          : 0;
        break;
      case Op::kCmpLeS:
        r[insn.dst] = static_cast<int64_t>(r[insn.a]) <=
                              static_cast<int64_t>(r[insn.b])
                          ? 1
                          : 0;
        break;
      case Op::kNot:
        r[insn.dst] = r[insn.a] == 0 ? 1 : 0;
        break;
      case Op::kJz:
        if (r[insn.a] == 0) {
          pc = insn.imm;
          continue;
        }
        break;
      case Op::kJmp:
        pc = insn.imm;
        continue;
      case Op::kRet:
        return r[insn.a];
      case Op::kRetImm:
        return insn.imm;
    }
    ++pc;
  }
  SPIN_PANIC("micro program fell off the end (validator missed it)");
}

}  // namespace micro
}  // namespace spin
