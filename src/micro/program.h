// Micro-programs: a tiny register IR for inlinable guards and handlers.
//
// The paper's dispatcher "inline[s] the code of small guards and handlers
// directly into the dispatch routine" (§3). In SPIN the code generator read
// the compiled Modula-3 body; here, a guard or handler that wants to be
// inlinable supplies its body as a micro-program. The dispatcher can then
//   - interpret it (portable slow path),
//   - lower it into the generated dispatch stub (x86-64 JIT), or
//   - reason about it (purity verification, cost estimation for guard
//     short-circuiting).
//
// Guards must be FUNCTIONAL: the validator rejects store instructions in
// programs built as functional, reproducing the compiler-verified property
// of §2.3. Control flow is forward-only, so every micro-program terminates;
// runaway-handler concerns (§2.6) only arise for native handlers.
#ifndef SRC_MICRO_PROGRAM_H_
#define SRC_MICRO_PROGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace spin {
namespace micro {

inline constexpr int kNumRegs = 8;
inline constexpr int kMaxArgs = 8;

enum class Op : uint8_t {
  kLoadArg,     // r[dst] = args[imm]
  kLoadImm,     // r[dst] = imm
  kLoadGlobal,  // r[dst] = zero-extended load of width (1<<b) from address imm
  kLoadField,   // r[dst] = zero-extended load of width (1<<b) from r[a] + imm
  kStoreGlobal, // store low (1<<b) bytes of r[a] to address imm
  kStoreField,  // store low (1<<b) bytes of r[b] to r[a] + imm
  kMov,         // r[dst] = r[a]
  kAdd,         // r[dst] = r[a] + r[b]
  kSub,         // r[dst] = r[a] - r[b]
  kAnd,         // r[dst] = r[a] & r[b]
  kOr,          // r[dst] = r[a] | r[b]
  kXor,         // r[dst] = r[a] ^ r[b]
  kShlImm,      // r[dst] = r[a] << imm      (imm < 64)
  kShrImm,      // r[dst] = r[a] >> imm      (logical, imm < 64)
  kCmpEq,       // r[dst] = r[a] == r[b]
  kCmpNe,       // r[dst] = r[a] != r[b]
  kCmpLtU,      // r[dst] = r[a] <  r[b] (unsigned)
  kCmpLeU,      // r[dst] = r[a] <= r[b] (unsigned)
  kCmpLtS,      // r[dst] = (int64)r[a] <  (int64)r[b]
  kCmpLeS,      // r[dst] = (int64)r[a] <= (int64)r[b]
  kNot,         // r[dst] = (r[a] == 0)
  kJz,          // if r[a] == 0, jump forward to index imm
  kJmp,         // jump forward to index imm
  kRet,         // return r[a]
  kRetImm,      // return imm
};

// Count sentinel for exhaustiveness static_asserts (the TraceKindName
// pattern): program.cc pins the last enumerator against this literal, and
// the admission table in verify.cc is sized by it, so adding an opcode
// without updating the name table and the verifier fails to compile.
inline constexpr size_t kNumOps = 25;

const char* OpName(Op op);

struct Insn {
  Op op;
  uint8_t dst = 0;
  uint8_t a = 0;
  uint8_t b = 0;
  uint64_t imm = 0;
};

enum class ValidateStatus {
  kOk,
  kEmpty,
  kBadRegister,
  kBadArgIndex,
  kBadWidth,
  kBadShift,
  kBackwardJump,
  kJumpOutOfRange,
  kMissingTerminator,
  kImpureFunctional,  // store in a FUNCTIONAL program
};

// Count sentinel; program.cc pins the last enumerator against it so the
// ValidateStatusName table cannot fall out of date silently.
inline constexpr size_t kNumValidateStatuses = 10;

const char* ValidateStatusName(ValidateStatus status);

class Program {
 public:
  Program() = default;
  Program(std::vector<Insn> code, int num_args, bool functional);

  const std::vector<Insn>& code() const { return code_; }
  int num_args() const { return num_args_; }
  bool functional() const { return functional_; }
  bool empty() const { return code_.empty(); }

  // Structural + attribute validation; must return kOk before the program
  // may be installed on an event.
  ValidateStatus Validate() const;

  // Static instruction count; the dispatcher uses it to order inlined guards
  // cheapest-first (guard short-circuiting, §2.3).
  size_t Cost() const { return code_.size(); }

  // Bitmask of virtual registers that may be read before being written.
  // Register semantics are "zero at entry"; the interpreter zeroes its whole
  // register file, and the JIT zeroes exactly this set.
  uint8_t UndefinedReads() const;

  std::string ToString() const;

 private:
  std::vector<Insn> code_;
  int num_args_ = 0;
  bool functional_ = false;
};

// Fluent builder. Example (the Table 1 guard — compare a global to a
// constant and return true):
//   Program p = ProgramBuilder(/*num_args=*/0, /*functional=*/true)
//                   .LoadGlobal(0, &g_state, 8)
//                   .LoadImm(1, kExpected)
//                   .CmpEq(2, 0, 1)
//                   .Ret(2)
//                   .Build();
class ProgramBuilder {
 public:
  ProgramBuilder(int num_args, bool functional)
      : num_args_(num_args), functional_(functional) {}

  ProgramBuilder& LoadArg(int dst, int arg);
  ProgramBuilder& LoadImm(int dst, uint64_t imm);
  ProgramBuilder& LoadGlobal(int dst, const void* addr, int width = 8);
  ProgramBuilder& LoadField(int dst, int base, uint64_t offset, int width = 8);
  ProgramBuilder& StoreGlobal(const void* addr, int src, int width = 8);
  ProgramBuilder& StoreField(int base, uint64_t offset, int src,
                             int width = 8);
  ProgramBuilder& Mov(int dst, int src);
  ProgramBuilder& Add(int dst, int a, int b);
  ProgramBuilder& Sub(int dst, int a, int b);
  ProgramBuilder& And(int dst, int a, int b);
  ProgramBuilder& Or(int dst, int a, int b);
  ProgramBuilder& Xor(int dst, int a, int b);
  ProgramBuilder& ShlImm(int dst, int a, int amount);
  ProgramBuilder& ShrImm(int dst, int a, int amount);
  ProgramBuilder& CmpEq(int dst, int a, int b);
  ProgramBuilder& CmpNe(int dst, int a, int b);
  ProgramBuilder& CmpLtU(int dst, int a, int b);
  ProgramBuilder& CmpLeU(int dst, int a, int b);
  ProgramBuilder& CmpLtS(int dst, int a, int b);
  ProgramBuilder& CmpLeS(int dst, int a, int b);
  ProgramBuilder& Not(int dst, int a);
  // Returns the index of the emitted jump; patch with PatchJumpTarget.
  size_t Jz(int a);
  size_t Jmp();
  void PatchJumpTarget(size_t jump_index);  // target = next emitted index
  ProgramBuilder& Ret(int a);
  ProgramBuilder& RetImm(uint64_t imm);

  Program Build() &&;

 private:
  ProgramBuilder& Emit(Op op, uint8_t dst, uint8_t a, uint8_t b, uint64_t imm);

  std::vector<Insn> code_;
  int num_args_;
  bool functional_;
};

// --- Canned programs used across benches, tests, and extensions -----------

// Guard: return *addr == value. (Table 1's guard shape.)
Program GuardGlobalEq(const uint64_t* addr, uint64_t value);

// Guard: return masked field of pointer argument `arg` equals value:
//   return (Load(args[arg] + offset, width) & mask) == value
// (the packet-header discrimination shape of §3.2 / Table 2).
Program GuardArgFieldEq(int num_args, int arg, uint64_t offset, int width,
                        uint64_t mask, uint64_t value);

// Guard or handler: return constant (empty handler of Table 1 when value
// is ignored; "evaluate to false" guards of Table 2 when value==0).
Program ReturnConst(int num_args, uint64_t value, bool functional);

// Handler: *addr += 1; return 0. Deliberately impure.
Program IncrementGlobal(uint64_t* addr, int num_args);

}  // namespace micro
}  // namespace spin

#endif  // SRC_MICRO_PROGRAM_H_
