// Virtual memory substrate: address spaces, a software page table, and the
// VM.PageFault event (§2.3 "Handling results"):
//
//   "the system defines a VM.PageFault event, which is raised on any page
//    fault. Its return value is a boolean indicating whether the page is
//    accessible. If the page is inaccessible, the VM system crashes the
//    application. The default handler for this event relies on a trusted
//    default paging service provided by VM. The result handler for this
//    event returns the logical-or of all the handler results."
#ifndef SRC_KERNEL_VM_H_
#define SRC_KERNEL_VM_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/dispatcher.h"

namespace spin {

inline constexpr uint64_t kPageSize = 4096;
inline constexpr int32_t kAccessRead = 1;
inline constexpr int32_t kAccessWrite = 2;

class AddressSpace {
 public:
  explicit AddressSpace(uint64_t id) : id_(id) {}

  uint64_t id() const { return id_; }

  bool IsMapped(uint64_t addr, int32_t access) const {
    auto it = pages_.find(addr / kPageSize);
    return it != pages_.end() && (it->second.prot & access) == access;
  }

  // Maps a zero-filled page covering `addr` with protection `prot`.
  void MapZeroPage(uint64_t addr, int32_t prot) {
    Page& page = pages_[addr / kPageSize];
    if (page.frame == nullptr) {
      page.frame = std::make_unique<uint8_t[]>(kPageSize);
      page.mapped_at = ++clock_;
    }
    page.prot = prot;
    page.last_access = ++clock_;
  }

  void Unmap(uint64_t addr) { pages_.erase(addr / kPageSize); }
  void SetProtection(uint64_t addr, int32_t prot) {
    auto it = pages_.find(addr / kPageSize);
    if (it != pages_.end()) {
      it->second.prot = prot;
    }
  }

  // Direct frame access for mapped pages (nullptr when unmapped).
  // Advances the access clock the replacement policies consult.
  uint8_t* FrameFor(uint64_t addr) {
    auto it = pages_.find(addr / kPageSize);
    if (it == pages_.end()) {
      return nullptr;
    }
    it->second.last_access = ++clock_;
    return it->second.frame.get();
  }

  size_t resident_pages() const { return pages_.size(); }

  // Replacement-policy queries (kNoVpn when empty): the resident page
  // mapped earliest (FIFO) and the one touched least recently (LRU).
  static constexpr uint64_t kNoVpn = ~0ull;
  uint64_t FifoVictim() const {
    uint64_t vpn = kNoVpn;
    uint64_t oldest = ~0ull;
    for (const auto& [page_vpn, page] : pages_) {
      if (page.mapped_at < oldest) {
        oldest = page.mapped_at;
        vpn = page_vpn;
      }
    }
    return vpn;
  }
  uint64_t LruVictim() const {
    uint64_t vpn = kNoVpn;
    uint64_t least = ~0ull;
    for (const auto& [page_vpn, page] : pages_) {
      if (page.last_access < least) {
        least = page.last_access;
        vpn = page_vpn;
      }
    }
    return vpn;
  }

 private:
  struct Page {
    std::unique_ptr<uint8_t[]> frame;
    int32_t prot = 0;
    uint64_t mapped_at = 0;
    uint64_t last_access = 0;
  };
  uint64_t id_;
  uint64_t clock_ = 0;
  std::unordered_map<uint64_t, Page> pages_;
};

// The VM module: owns the PageFault event and the trusted default pager.
class Vm {
 public:
  explicit Vm(Dispatcher* dispatcher);

  // Raised on any fault; logical-or result policy; default handler = the
  // trusted pager (demand-zero).
  Event<bool(AddressSpace*, uint64_t, int32_t)> PageFault;

  // Raised when a space exceeds its resident limit; returns the victim
  // vpn (or AddressSpace::kNoVpn to refuse). The FIFO policy handler is
  // installed by VM; an extension replaces the paging policy (§1) by
  // uninstalling it and installing its own — see the LRU test/example.
  Event<int64_t(AddressSpace*)> SelectVictim;

  // Memory pressure: spaces may hold at most `pages` resident pages
  // (0 = unlimited). Exceeding it triggers SelectVictim + eviction.
  void SetResidentLimit(size_t pages) { resident_limit_ = pages; }
  size_t resident_limit() const { return resident_limit_; }
  uint64_t eviction_count() const { return evictions_; }

  // The FIFO policy binding (for replacement by extensions).
  const BindingHandle& fifo_policy_binding() const { return fifo_binding_; }

  // Performs a memory access. Returns false when the fault could not be
  // resolved (the paper's "VM system crashes the application" case, decided
  // by the caller — typically the kernel killing the strand).
  bool Access(AddressSpace& space, uint64_t addr, int32_t access);

  // Byte accessors used by workloads; they fault pages in on demand.
  bool Read(AddressSpace& space, uint64_t addr, uint8_t* out);
  bool Write(AddressSpace& space, uint64_t addr, uint8_t value);

  const Module& module() const { return module_; }
  uint64_t fault_count() const { return faults_; }
  uint64_t default_pager_count() const { return default_paged_; }

 private:
  static bool DefaultPager(Vm* vm, AddressSpace* space, uint64_t addr,
                           int32_t access);
  static int64_t FifoPolicy(Vm* vm, AddressSpace* space);
  void EnforceResidency(AddressSpace& space);

  Module module_{"VM"};
  Dispatcher* dispatcher_;
  BindingHandle fifo_binding_;
  size_t resident_limit_ = 0;
  uint64_t faults_ = 0;
  uint64_t default_paged_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace spin

#endif  // SRC_KERNEL_VM_H_
