// Strands: the kernel's thread abstraction (paper §2.2, Table 3's
// Strand.Run). A strand is a simulated kernel thread: it owns saved machine
// state and is driven in quanta by the scheduler; each scheduling decision
// raises the Strand.Run event exactly as SPIN's scheduler did.
#ifndef SRC_KERNEL_STRAND_H_
#define SRC_KERNEL_STRAND_H_

#include <cstdint>
#include <functional>
#include <string>

namespace spin {

class AddressSpace;

// The saved register state delivered with MachineTrap.Syscall (the paper's
// MachineCPU.SavedState). Field names follow the Alpha calling convention
// the paper's Figure 2 dispatches on (ms.v0 holds the syscall number).
struct SavedState {
  int64_t v0 = 0;      // syscall number in, primary result out
  int64_t a[4] = {};   // arguments
  int64_t result = 0;  // secondary result
  int64_t error = 0;   // 0 = success
  uint64_t pc = 0;
};

enum class StrandState : uint8_t { kReady, kRunning, kBlocked, kDone };

class Strand {
 public:
  // A strand's body runs one quantum per call and returns true while the
  // strand has more work (a cooperative simulation of kernel threads).
  using StepFn = std::function<bool(Strand&)>;

  Strand(uint64_t id, std::string name, StepFn step, AddressSpace* space)
      : id_(id), name_(std::move(name)), step_(std::move(step)),
        space_(space) {}

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  AddressSpace* space() const { return space_; }
  StrandState state() const { return state_; }
  void set_state(StrandState state) { state_ = state; }

  SavedState& saved_state() { return saved_; }
  const SavedState& saved_state() const { return saved_; }

  uint64_t quanta_run() const { return quanta_; }

  bool RunQuantum() {
    ++quanta_;
    return step_(*this);
  }

  // The saved machine register file (context-switch cost model).
  void* register_file() { return regfile_; }

 private:
  alignas(16) uint8_t regfile_[512] = {};
  uint64_t id_;
  std::string name_;
  StepFn step_;
  AddressSpace* space_;
  StrandState state_ = StrandState::kReady;
  SavedState saved_;
  uint64_t quanta_ = 0;
};

}  // namespace spin

#endif  // SRC_KERNEL_STRAND_H_
