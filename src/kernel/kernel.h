// The kernel substrate: scheduler, trap layer, and the events that SPIN's
// core system services raise (§2.2, §3.2 / Table 3).
//
// "The kernel provides no native system call handling facilities. Instead,
// the MachineTrap module, which implements basic trap handling, exports an
// event Syscall through the MachineTrap interface." Extensions (the Mach
// and OSF/1 emulators in src/emul/) install guarded handlers on it.
//
// Strand.Run is raised on every scheduling operation, exactly the hook the
// paper's user-space thread packages attached to.
#ifndef SRC_KERNEL_KERNEL_H_
#define SRC_KERNEL_KERNEL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/core/dispatcher.h"
#include "src/kernel/strand.h"
#include "src/kernel/vm.h"

namespace spin {

class Kernel {
 public:
  explicit Kernel(Dispatcher* dispatcher = &Dispatcher::Global());

  Dispatcher& dispatcher() { return *dispatcher_; }

  // --- Events (the kernel's extension surface) --------------------------

  // Raised on every scheduling operation.
  Event<void(Strand*)> StrandRun;
  // Raised on every system call trap; extensions dispatch on state.v0.
  Event<void(Strand*, SavedState&)> MachineTrapSyscall;
  // Raised on every clock tick with the new kernel time; extensions hook
  // it for timeouts, profiling, or aging policies.
  Event<void(int64_t)> ClockTick;

  Vm vm;

  // Module identities (authorities over the events above).
  const Module& strand_module() const { return strand_module_; }
  const Module& machine_trap_module() const { return machine_trap_module_; }

  // --- Strand management -------------------------------------------------

  AddressSpace& CreateAddressSpace();
  Strand& CreateStrand(std::string name, Strand::StepFn step,
                       AddressSpace* space = nullptr);

  // Trap entry: saves nothing extra (SavedState lives in the strand),
  // switches to kernel context, and raises MachineTrap.Syscall.
  void Syscall(Strand& strand);

  void Block(Strand& strand);
  void Wake(Strand& strand);
  void Kill(Strand& strand);

  // --- Virtual kernel clock and timers ---------------------------------

  uint64_t now_ns() const { return clock_ns_; }
  // Advances the clock, raises Clock.Tick, and wakes expired sleepers.
  void Tick(uint64_t delta_ns);
  // Blocks `strand` until the kernel clock reaches `wake_ns`.
  void SleepUntil(Strand& strand, uint64_t wake_ns);
  size_t sleeping() const { return sleepers_.size(); }

  // --- Scheduler -----------------------------------------------------------

  // Round-robin until no strand is runnable (or the quantum cap is hit).
  // When the run queue drains but sleepers remain, the clock jumps to the
  // next timer expiry, as an idle kernel would.
  // Returns the number of quanta executed.
  uint64_t RunUntilIdle(uint64_t max_quanta = 1u << 20);

  Strand* current() const { return current_; }
  uint64_t context_switches() const { return context_switches_; }
  uint64_t syscall_count() const { return syscalls_; }
  size_t runnable() const { return run_queue_.size(); }

 private:
  static void IdleStrandRun(Strand*) {}  // intrinsic scheduler hook
  static void UnknownSyscall(Strand*, SavedState& state);

  Module strand_module_{"Strand"};
  Module machine_trap_module_{"MachineTrap"};
  Dispatcher* dispatcher_;

  static void IdleClockTick(int64_t) {}

  std::vector<std::unique_ptr<Strand>> strands_;
  std::vector<std::unique_ptr<AddressSpace>> spaces_;
  std::deque<Strand*> run_queue_;
  // (wake_ns, strand), kept sorted by wake time; small and rarely deep.
  std::vector<std::pair<uint64_t, Strand*>> sleepers_;
  Strand* current_ = nullptr;
  uint64_t next_id_ = 1;
  uint64_t clock_ns_ = 0;
  uint64_t context_switches_ = 0;
  uint64_t syscalls_ = 0;
};

}  // namespace spin

#endif  // SRC_KERNEL_KERNEL_H_
