#include "src/kernel/vm.h"

namespace spin {

Vm::Vm(Dispatcher* dispatcher)
    : PageFault("VM.PageFault", &module_, nullptr, dispatcher),
      SelectVictim("VM.SelectVictim", &module_, nullptr, dispatcher),
      dispatcher_(dispatcher) {
  dispatcher_->SetResultPolicy(PageFault, ResultPolicy::kOr, &module_);
  dispatcher_->InstallDefaultHandler(PageFault, &Vm::DefaultPager, this,
                                     {.module = &module_});
  fifo_binding_ = dispatcher_->InstallHandler(SelectVictim, &Vm::FifoPolicy,
                                              this, {.module = &module_});
  // With no policy installed at all (e.g. mid-replacement), refuse to
  // evict rather than crash the fault path.
  dispatcher_->InstallDefaultHandler(
      SelectVictim,
      +[](AddressSpace*) -> int64_t {
        return static_cast<int64_t>(AddressSpace::kNoVpn);
      },
      {.module = &module_});
}

int64_t Vm::FifoPolicy(Vm* vm, AddressSpace* space) {
  (void)vm;
  return static_cast<int64_t>(space->FifoVictim());
}

void Vm::EnforceResidency(AddressSpace& space) {
  if (resident_limit_ == 0) {
    return;
  }
  while (space.resident_pages() >= resident_limit_) {
    auto victim = static_cast<uint64_t>(SelectVictim.Raise(&space));
    if (victim == AddressSpace::kNoVpn) {
      return;  // the policy refused; allow the space to exceed its limit
    }
    space.Unmap(victim * kPageSize);
    ++evictions_;
  }
}

bool Vm::DefaultPager(Vm* vm, AddressSpace* space, uint64_t addr,
                      int32_t access) {
  ++vm->default_paged_;
  space->MapZeroPage(addr, kAccessRead | kAccessWrite);
  (void)access;
  return true;
}

bool Vm::Access(AddressSpace& space, uint64_t addr, int32_t access) {
  if (space.IsMapped(addr, access)) {
    return true;
  }
  EnforceResidency(space);
  ++faults_;
  bool accessible = PageFault.Raise(&space, addr, access);
  return accessible && space.IsMapped(addr, access);
}

bool Vm::Read(AddressSpace& space, uint64_t addr, uint8_t* out) {
  if (!Access(space, addr, kAccessRead)) {
    return false;
  }
  *out = space.FrameFor(addr)[addr % kPageSize];
  return true;
}

bool Vm::Write(AddressSpace& space, uint64_t addr, uint8_t value) {
  if (!Access(space, addr, kAccessWrite)) {
    return false;
  }
  space.FrameFor(addr)[addr % kPageSize] = value;
  return true;
}

}  // namespace spin
