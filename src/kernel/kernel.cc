#include "src/kernel/kernel.h"

#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "src/core/shard.h"
#include "src/rt/panic.h"

namespace spin {
namespace {

// Models the machine-dependent trap path: "the machine dependent part of
// the kernel saves the state of the trapping thread, changes the state of
// the system to allow safe execution in the kernel context" (§2.2). A real
// user->kernel->user round trip on the host charges the simulated syscall
// with a realistic trap cost, so the microbenchmark overhead numbers
// (bench_micro_overhead) compare event dispatch against a genuine trap.
void SimulateTrapEntry() {
#if defined(__linux__)
  ::syscall(SYS_getpid);
#endif
}

// Models the register-file save/restore of a context switch.
struct RegisterFile {
  uint8_t bytes[512];
};
RegisterFile g_machine_regs;

}  // namespace

Kernel::Kernel(Dispatcher* dispatcher)
    : StrandRun("Strand.Run", &strand_module_, &Kernel::IdleStrandRun,
                dispatcher),
      MachineTrapSyscall("MachineTrap.Syscall", &machine_trap_module_,
                         nullptr, dispatcher),
      ClockTick("Clock.Tick", &strand_module_, &Kernel::IdleClockTick,
                dispatcher),
      vm(dispatcher),
      dispatcher_(dispatcher) {
  // With no emulator installed a system call must not crash the kernel:
  // the default handler reports "unknown syscall" in the saved state.
  dispatcher_->InstallDefaultHandler(MachineTrapSyscall,
                                     &Kernel::UnknownSyscall,
                                     {.module = &machine_trap_module_});
}

void Kernel::UnknownSyscall(Strand*, SavedState& state) {
  state.error = 78;  // ENOSYS on OSF/1
  state.v0 = -1;
}

AddressSpace& Kernel::CreateAddressSpace() {
  spaces_.push_back(std::make_unique<AddressSpace>(next_id_++));
  return *spaces_.back();
}

Strand& Kernel::CreateStrand(std::string name, Strand::StepFn step,
                             AddressSpace* space) {
  strands_.push_back(std::make_unique<Strand>(next_id_++, std::move(name),
                                              std::move(step), space));
  Strand* strand = strands_.back().get();
  run_queue_.push_back(strand);
  return *strand;
}

void Kernel::Syscall(Strand& strand) {
  ++syscalls_;
  SimulateTrapEntry();
  // State is saved in the strand; raise the event and let guards route it
  // (Figure 2).
  MachineTrapSyscall.Raise(&strand, strand.saved_state());
}

void Kernel::Block(Strand& strand) {
  strand.set_state(StrandState::kBlocked);
}

void Kernel::Wake(Strand& strand) {
  if (strand.state() == StrandState::kBlocked) {
    strand.set_state(StrandState::kReady);
    run_queue_.push_back(&strand);
  }
}

void Kernel::Kill(Strand& strand) { strand.set_state(StrandState::kDone); }

void Kernel::Tick(uint64_t delta_ns) {
  clock_ns_ += delta_ns;
  ClockTick.Raise(static_cast<int64_t>(clock_ns_));
  // Wake expired sleepers (kept sorted: earliest at the back for cheap
  // pops).
  while (!sleepers_.empty() && sleepers_.back().first <= clock_ns_) {
    Strand* strand = sleepers_.back().second;
    sleepers_.pop_back();
    Wake(*strand);
  }
}

void Kernel::SleepUntil(Strand& strand, uint64_t wake_ns) {
  Block(strand);
  sleepers_.emplace_back(wake_ns, &strand);
  std::sort(sleepers_.begin(), sleepers_.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
}

uint64_t Kernel::RunUntilIdle(uint64_t max_quanta) {
  uint64_t quanta = 0;
  while (quanta < max_quanta) {
    if (run_queue_.empty()) {
      if (sleepers_.empty()) {
        break;
      }
      // Idle: jump the clock to the next timer expiry.
      uint64_t next = sleepers_.back().first;
      Tick(next > clock_ns_ ? next - clock_ns_ : 0);
      continue;
    }
    Strand* strand = run_queue_.front();
    run_queue_.pop_front();
    if (strand->state() == StrandState::kDone ||
        strand->state() == StrandState::kBlocked) {
      continue;
    }
    ++context_switches_;
    current_ = strand;
    strand->set_state(StrandState::kRunning);
    // Save/restore the machine register file (context-switch cost model).
    std::memcpy(strand->register_file(), &g_machine_regs,
                sizeof(g_machine_regs));
    // The quantum's raise source is the strand: Strand.Run and everything
    // the strand raises while running land on the strand's dispatcher
    // shard, like a NIC steering one flow to one queue.
    bool more;
    {
      RaiseSourceScope source(
          MakeRaiseSource(SourceKind::kStrand, strand->id()));
      StrandRun.Raise(strand);  // every scheduling op raises Strand.Run
      more = strand->RunQuantum();
    }
    ++quanta;
    current_ = nullptr;
    if (!more || strand->state() == StrandState::kDone) {
      strand->set_state(StrandState::kDone);
    } else if (strand->state() == StrandState::kRunning) {
      strand->set_state(StrandState::kReady);
      run_queue_.push_back(strand);
    }
    // Blocked strands re-enter the queue through Wake().
  }
  return quanta;
}

}  // namespace spin
