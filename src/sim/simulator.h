// Discrete-event simulation substrate.
//
// Stands in for the paper's second machine and 10 Mb/s Ethernet (§3.2):
// virtual time advances through an event queue; link models charge
// serialization and propagation delay in virtual nanoseconds. Protocol
// processing runs as real host code, so its cost can be measured with the
// real clock and reported alongside the modeled wire time (see
// bench_table2_udp and EXPERIMENTS.md for the calibration discussion).
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace spin {
namespace sim {

class Simulator {
 public:
  uint64_t now_ns() const { return now_ns_; }

  // Schedules `fn` at absolute virtual time `at_ns` (clamped to now).
  void At(uint64_t at_ns, std::function<void()> fn) {
    queue_.push(Entry{at_ns < now_ns_ ? now_ns_ : at_ns, next_seq_++,
                      std::move(fn)});
  }

  void After(uint64_t delay_ns, std::function<void()> fn) {
    At(now_ns_ + delay_ns, std::move(fn));
  }

  // Runs events until the queue drains or virtual time passes `until_ns`.
  // Returns the number of events executed.
  size_t Run(uint64_t until_ns = ~0ull) {
    size_t executed = 0;
    while (!queue_.empty() && queue_.top().at_ns <= until_ns) {
      Entry entry = queue_.top();
      queue_.pop();
      now_ns_ = entry.at_ns;
      entry.fn();
      ++executed;
    }
    return executed;
  }

  bool RunOne() {
    if (queue_.empty()) {
      return false;
    }
    Entry entry = queue_.top();
    queue_.pop();
    now_ns_ = entry.at_ns;
    entry.fn();
    return true;
  }

  size_t pending() const { return queue_.size(); }

 private:
  struct Entry {
    uint64_t at_ns;
    uint64_t seq;  // FIFO among simultaneous events
    std::function<void()> fn;

    bool operator>(const Entry& other) const {
      return at_ns != other.at_ns ? at_ns > other.at_ns : seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  uint64_t now_ns_ = 0;
  uint64_t next_seq_ = 0;
};

// A link's timing model. The paper's testbed: 10 Mb/s shared Ethernet.
struct LinkModel {
  uint64_t bandwidth_bps = 10'000'000;
  uint64_t propagation_ns = 25'000;  // per-hop latency incl. device costs

  uint64_t SerializationNs(size_t bytes) const {
    return bytes * 8ull * 1'000'000'000ull / bandwidth_bps;
  }
  uint64_t TransferNs(size_t bytes) const {
    return SerializationNs(bytes) + propagation_ns;
  }
};

}  // namespace sim
}  // namespace spin

#endif  // SRC_SIM_SIMULATOR_H_
