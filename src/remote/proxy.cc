#include "src/remote/proxy.h"

#include <algorithm>
#include <optional>
#include <ostream>
#include <utility>

#include "src/core/errors.h"
#include "src/obs/context.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"
#include "src/rt/clock.h"

namespace spin {
namespace remote {

EventProxy::EventProxy(net::Host& host, sim::Simulator* sim,
                       EventBase& event, const ProxyOptions& opts)
    : host_(host),
      sim_(sim),
      event_(event),
      opts_(opts),
      plan_(PlanFor(event.sig(), event.name())),
      module_(opts.module_name.empty() ? "Remote.Proxy." + event.name()
                                       : opts.module_name),
      obs_name_(event.obs_name()),
      watch_name_(obs::Intern("proxy/" + event.name())) {
  if (opts_.kind == RaiseKind::kAsync) {
    // §2.6 across the wire: a detached raise can return nothing and must
    // not reference raiser memory after the raiser has moved on.
    if (plan_.has_result()) {
      throw RemoteError(RemoteStatus::kUnmarshalable,
                        event.name() +
                            ": fire-and-forget proxies cannot return "
                            "results");
    }
    if (plan_.num_byref != 0) {
      throw RemoteError(RemoteStatus::kUnmarshalable,
                        event.name() +
                            ": fire-and-forget proxies cannot take VAR "
                            "parameters");
    }
  }
  socket_ = std::make_unique<net::UdpSocket>(
      host_, opts_.local_port,
      [this](const net::Packet& packet) { OnDatagram(packet); });

  // Seed the id counter from virtual time so a proxy re-bound on the same
  // local port never reuses a predecessor's bind/request ids — the
  // exporter's replay cache would otherwise serve it the old incarnation's
  // cached replies. Deterministic: virtual time is a pure function of the
  // simulation schedule.
  next_id_ = sim_->now_ns() + 1;

  // Bind before installing anything: a denied handshake throws out of the
  // constructor and leaves no local binding behind.
  std::vector<micro::Program> imposed = BindHandshake();

  InstallOptions install;
  install.order = opts_.order;
  install.module = &module_;
  install.async = opts_.kind == RaiseKind::kAsync;
  binding_ = host_.dispatcher().InstallErasedHandler(event_, this,
                                                     &EventProxy::Invoke,
                                                     install);
  for (micro::Program& prog : imposed) {
    host_.dispatcher().ImposeMicroGuard(
        binding_, std::move(prog),
        opts_.jit_guards ? Dispatcher::GuardCompileMode::kJit
                         : Dispatcher::GuardCompileMode::kInterpret);
  }
  obs::RegisterSource(this, &EventProxy::ExportMetricsSource);
  obs::Watchdog::Global().RegisterProbe(this, &EventProxy::WatchdogProbeSource);
}

EventProxy::~EventProxy() {
  obs::Watchdog::Global().UnregisterProbe(this);
  obs::UnregisterSource(this);
  if (binding_ != nullptr && binding_->active.load()) {
    host_.dispatcher().Uninstall(binding_, &module_);
  }
}

std::vector<micro::Program> EventProxy::BindHandshake() {
  BindRequestMsg request;
  request.bind_id = next_id_++;
  request.event_name = event_.name();
  request.module_name = module_.name();
  request.credential =
      opts_.credential.empty() ? host_.credential() : opts_.credential;
  request.params = plan_.params;
  const uint64_t id = request.bind_id;

  if (!TransmitAwait(EncodeBindRequest(request), id, [this, id] {
        return bind_inbox_.find(id) != bind_inbox_.end();
      })) {
    ++timeouts_;
    obs::FlightRecorder::Global().Emit(obs::TraceKind::kRemoteTimeout,
                                       obs_name_, id);
    throw RemoteError(RemoteStatus::kTimeout,
                      event_.name() + ": bind handshake got no reply after " +
                          std::to_string(opts_.max_attempts) + " attempts");
  }
  BindReplyMsg reply = std::move(bind_inbox_[id]);
  bind_inbox_.erase(id);

  switch (reply.status) {
    case WireStatus::kOk:
      break;
    case WireStatus::kDenied:
      obs::FlightRecorder::Global().Emit(obs::TraceKind::kRemoteBind,
                                         obs_name_, 0);
      throw RemoteError(RemoteStatus::kDenied, reply.error);
    case WireStatus::kUnbound:
    case WireStatus::kNoSuchEvent:
      throw RemoteError(RemoteStatus::kDead, event_.name());
    default:
      throw RemoteError(RemoteStatus::kProtocol,
                        event_.name() + ": unexpected bind reply status");
  }
  // Admission refusal: the decoder verified every wire-received guard and
  // found one it will not admit (out-of-bounds access, backward jump,
  // store, unknown opcode, ...). The bind fails with a typed error — the
  // hostile program never reached an evaluator and costs nothing per
  // raise.
  if (reply.guard_verify != micro::VerifyStatus::kOk) {
    throw RemoteError(
        RemoteStatus::kBadGuard,
        event_.name() + ": imposed guard #" +
            std::to_string(reply.guard_verify_index) +
            " refused by the admission verifier: " +
            micro::VerifyStatusName(reply.guard_verify));
  }
  // Imposed guards evaluate over the same argument slots locally as they
  // would exporter-side, so a mismatched arity is a protocol violation,
  // not something to paper over.
  for (const micro::Program& prog : reply.guards) {
    if (prog.num_args() != static_cast<int>(plan_.params.size())) {
      throw RemoteError(RemoteStatus::kProtocol,
                        event_.name() + ": imposed guard arity mismatch");
    }
  }
  token_ = reply.token;
  obs::FlightRecorder::Global().Emit(obs::TraceKind::kRemoteBind, obs_name_,
                                     token_);
  return std::move(reply.guards);
}

bool EventProxy::TransmitAwait(const std::string& encoded,
                               uint64_t trace_arg,
                               const std::function<bool()>& arrived) {
  uint64_t attempt_timeout = opts_.timeout_ns;
  uint64_t prev_send_v = 0;
  for (uint32_t attempt = 1; attempt <= opts_.max_attempts; ++attempt) {
    if (attempt > 1) {
      ++retries_;
      obs::FlightRecorder::Global().Emit(obs::TraceKind::kRemoteRetry,
                                         obs_name_, attempt - 1);
      // The backoff phase is the virtual time burned waiting out the
      // previous attempt before this resend — the retry policy's share of
      // the roundtrip, separable from first-attempt transit.
      obs::EmitVirtualPhase(obs::Phase::kBackoff, obs_name_,
                            sim_->now_ns() - prev_send_v);
    }
    socket_->SendTo(opts_.remote_ip, opts_.remote_port, encoded);
    prev_send_v = sim_->now_ns();
    obs::FlightRecorder::Global().Emit(obs::TraceKind::kRemoteSend,
                                       obs_name_, trace_arg);
    // Pump the simulator up to this attempt's deadline. The sentinel no-op
    // guarantees the queue holds an entry at the deadline, so RunOne always
    // advances virtual time — a lost reply cannot stall the loop.
    const uint64_t deadline = sim_->now_ns() + attempt_timeout;
    sim_->At(deadline, [] {});
    while (!arrived() && sim_->now_ns() < deadline && sim_->RunOne()) {
    }
    if (arrived()) {
      return true;
    }
    attempt_timeout = std::min(attempt_timeout * 2, opts_.max_backoff_ns);
  }
  return false;
}

uint64_t EventProxy::Invoke(void* fn, void* closure, uint64_t* slots) {
  (void)closure;
  auto* self = static_cast<EventProxy*>(fn);
  if (self->opts_.kind == RaiseKind::kAsync) {
    self->EnqueueAsync(slots);
    return 0;
  }
  return self->RaiseSync(slots);
}

uint64_t EventProxy::RaiseSync(uint64_t* slots) {
  ++raises_;
  if (dead_) {
    ++dead_raises_;
    throw RemoteError(
        revoked_ ? RemoteStatus::kRevoked : RemoteStatus::kDead,
        event_.name());
  }

  // The whole roundtrip — marshal, sends, retries, the reply join — runs
  // under one wire span, a child of the raising span, attributed to this
  // host. The span id travels in the request trailer so the exporter-side
  // records join the same tree. An unsampled raise sends no trailer at
  // all — trailer presence IS the wire's sampled bit — so the exporter
  // skips its side of the tree too.
  std::optional<obs::HostScope> host_scope;
  std::optional<obs::SpanScope> wire_scope;
  if (obs::Capturing()) {
    host_scope.emplace(host_.trace_host_id());
    wire_scope.emplace();
  }

  const bool tracing = wire_scope.has_value();
  RequestMsg request;
  std::string encoded;
  {
    obs::PhaseScope marshal_phase(obs::Phase::kMarshal, obs_name_, tracing);
    request.kind = RaiseKind::kSync;
    request.request_id = next_id_++;
    request.token = token_;
    request.event_name = event_.name();
    request.params = plan_.params;
    request.args.reserve(plan_.params.size());
    for (size_t i = 0; i < plan_.params.size(); ++i) {
      const WireParam& p = plan_.params[i];
      if (p.by_ref) {
        const void* ptr =
            reinterpret_cast<const void*>(static_cast<uintptr_t>(slots[i]));
        request.args.push_back(
            LoadScalar(static_cast<TypeClass>(p.cls), ptr));
      } else {
        request.args.push_back(slots[i]);
      }
    }
    if (wire_scope) {
      request.span_id = wire_scope->span();
      request.origin_host = host_.trace_host_id();
    }
    encoded = EncodeRequest(request);
    obs::FlightRecorder::Global().Emit(obs::TraceKind::kRemoteMarshal,
                                       obs_name_, encoded.size());
  }

  const uint64_t id = request.request_id;
  const uint64_t start_ns = sim_->now_ns();
  bool got_reply;
  {
    // Real-time wire phase: this thread pumping the simulated network for
    // the reply. The exporter's dispatch runs inline inside this pump (and
    // subtracts itself from the wire self-time through the nesting chain);
    // the virtual-clock transit is reported separately below.
    obs::PhaseScope wire_phase(obs::Phase::kWire, obs_name_, tracing);
    got_reply = TransmitAwait(encoded, id, [this, id] {
      return dead_ || inbox_.find(id) != inbox_.end();
    });
  }
  if (tracing) {
    // What the caller would observe on the simulated cluster's clock:
    // send to reply join, retries and backoff included (DESIGN.md §15).
    obs::EmitVirtualPhase(obs::Phase::kWireVirtual, obs_name_,
                          sim_->now_ns() - start_ns);
  }
  if (!got_reply) {
    ++timeouts_;
    obs::FlightRecorder::Global().Emit(obs::TraceKind::kRemoteTimeout,
                                       obs_name_, id);
    throw RemoteError(RemoteStatus::kTimeout,
                      event_.name() + " after " +
                          std::to_string(opts_.max_attempts) + " attempts");
  }
  if (inbox_.find(id) == inbox_.end()) {
    // A revocation notice arrived while we pumped for the reply.
    ++dead_raises_;
    throw RemoteError(
        revoked_ ? RemoteStatus::kRevoked : RemoteStatus::kDead,
        event_.name());
  }

  // Reply unmarshal covers everything after the join: status decode,
  // exception mapping, VAR copy-out. RAII: an error path still closes it.
  obs::PhaseScope unmarshal_phase(obs::Phase::kUnmarshal, obs_name_, tracing);
  ReplyMsg reply = std::move(inbox_[id]);
  inbox_.erase(id);
  obs::FlightRecorder::Global().Emit(obs::TraceKind::kRemoteReply,
                                     obs_name_, id);
  roundtrip_.Record(sim_->now_ns() - start_ns);

  switch (reply.status) {
    case WireStatus::kOk:
      break;
    case WireStatus::kException:
      throw RemoteError(RemoteStatus::kRemoteException, reply.error);
    case WireStatus::kUnbound:
    case WireStatus::kNoSuchEvent:
      dead_ = true;
      throw RemoteError(RemoteStatus::kDead, event_.name());
    case WireStatus::kRevoked:
      dead_ = true;
      revoked_ = true;
      obs::FlightRecorder::Global().Emit(obs::TraceKind::kRemoteRevoke,
                                         obs_name_, token_);
      throw RemoteError(RemoteStatus::kRevoked, reply.error);
    case WireStatus::kBadRequest:
    case WireStatus::kDenied:
    case WireStatus::kGuardRejected:
      // kGuardRejected here means the exporter's view of the imposed
      // guards disagreed with ours — proxy-side evaluation should have
      // skipped the raise before any datagram left.
      throw RemoteError(RemoteStatus::kProtocol, reply.error);
  }

  if (reply.byref.size() != plan_.num_byref) {
    throw RemoteError(RemoteStatus::kProtocol,
                      event_.name() + ": VAR copy-out count mismatch");
  }
  size_t out = 0;
  for (size_t i = 0; i < plan_.params.size(); ++i) {
    const WireParam& p = plan_.params[i];
    if (p.by_ref) {
      void* ptr = reinterpret_cast<void*>(static_cast<uintptr_t>(slots[i]));
      StoreScalar(static_cast<TypeClass>(p.cls), ptr, reply.byref[out++]);
    }
  }
  return reply.result;
}

void EventProxy::EnqueueAsync(const uint64_t* slots) {
  RequestMsg request;
  request.kind = RaiseKind::kAsync;
  request.token = token_;
  request.event_name = event_.name();
  request.params = plan_.params;
  request.args.assign(slots, slots + plan_.params.size());
  // Fire-and-forget still gets a wire span: a child of the raising (pool
  // thread's) span, announced by the marshal record here, flow-started by
  // Flush()'s kRemoteSend, and joined exporter-side via the trailer. An
  // unsampled raise gets no span and ships no trailer.
  std::optional<obs::SpanScope> wire_scope;
  if (obs::Capturing()) {
    wire_scope.emplace();
    request.span_id = wire_scope->span();
    request.origin_host = host_.trace_host_id();
  }
  {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    request.request_id = next_id_++;
    ++raises_;
    std::string encoded;
    {
      obs::PhaseScope marshal_phase(obs::Phase::kMarshal, obs_name_,
                                    wire_scope.has_value());
      encoded = EncodeRequest(request);
      obs::FlightRecorder::Global().Emit(obs::TraceKind::kRemoteMarshal,
                                         obs_name_, encoded.size());
    }
    outbox_.push_back(OutboxEntry{std::move(encoded), request.span_id});
  }
}

size_t EventProxy::Flush() {
  std::deque<OutboxEntry> drained;
  {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    drained.swap(outbox_);
    // Drain progress for the watchdog's stall rule: entries leaving the
    // outbox count whether they are transmitted below or dropped because
    // the proxy is dead — either way the queue is moving, not stalled.
    flushed_ += drained.size();
  }
  if (dead_) {
    // Fail fast like the sync path: a revoked/dead proxy generates no
    // traffic; queued datagrams are dropped, not transmitted.
    return 0;
  }
  std::optional<obs::HostScope> host_scope;
  if (obs::Enabled()) {
    host_scope.emplace(host_.trace_host_id());
  }
  for (const OutboxEntry& entry : drained) {
    socket_->SendTo(opts_.remote_ip, opts_.remote_port, entry.encoded);
    // The send belongs to the entry's wire span (allocated on the pool
    // thread at marshal time), not to whatever span this simulation-thread
    // caller happens to be under. Entries marshaled under a sampled-out
    // raise carry span 0 and emit nothing.
    if (obs::Enabled() && entry.span != 0) {
      obs::FlightRecorder::Global().EmitWith(obs::TraceKind::kRemoteSend,
                                             obs_name_, NowNs(), 0,
                                             entry.span, 0);
    }
  }
  return drained.size();
}

void EventProxy::OnDatagram(const net::Packet& packet) {
  std::string payload = packet.UdpPayload();
  MsgType type;
  if (!PeekType(payload, &type)) {
    return;  // not ours; ignore
  }
  switch (type) {
    case MsgType::kReply: {
      // Runs inline inside RaiseSync's wire pump on the same thread, so
      // this decode nests under (and subtracts from) the kWire scope.
      obs::PhaseScope decode_phase(obs::Phase::kUnmarshal, obs_name_);
      ReplyMsg reply;
      if (DecodeReply(payload, &reply)) {
        inbox_[reply.request_id] = std::move(reply);
      }
      return;
    }
    case MsgType::kBindReply: {
      BindReplyMsg reply;
      if (DecodeBindReply(payload, &reply)) {
        bind_inbox_[reply.bind_id] = std::move(reply);
      }
      return;
    }
    case MsgType::kRevoke: {
      RevokeMsg notice;
      if (DecodeRevoke(payload, &notice) && token_ != 0 &&
          notice.token == token_) {
        ++revoke_notices_;
        dead_ = true;
        revoked_ = true;
        obs::FlightRecorder::Global().Emit(obs::TraceKind::kRemoteRevoke,
                                           obs_name_, token_);
      }
      return;
    }
    default:
      return;  // requests/bind-requests are the exporter's business
  }
}

void EventProxy::WatchdogProbeSource(void* ctx,
                                     std::vector<obs::WatchSample>& out) {
  auto* self = static_cast<EventProxy*>(ctx);
  obs::WatchSample retry;
  retry.kind = obs::AnomalyKind::kRetryStorm;
  retry.name = self->watch_name_;
  retry.shard = 0;
  retry.depth = self->timeouts_;
  retry.progress = self->retries_;
  out.push_back(retry);
  obs::WatchSample backlog;
  backlog.kind = obs::AnomalyKind::kQueueStall;
  backlog.name = self->watch_name_;
  backlog.shard = 0;
  {
    std::lock_guard<std::mutex> lock(self->outbox_mu_);
    backlog.depth = self->outbox_.size();
    // Progress is what Flush() has drained, not what raisers enqueued: a
    // wedged Flush under a steady raise stream must still read as a
    // stall, and a draining outbox under an idle raiser must not.
    backlog.progress = self->flushed_;
  }
  out.push_back(backlog);
}

void EventProxy::ExportMetricsSource(void* ctx, std::ostream& os) {
  auto* self = static_cast<EventProxy*>(ctx);
  auto label = [self](std::ostream& o) {
    o << "{host=\"";
    obs::WriteLabelValue(o, self->host_.host_name());
    o << "\",event=\"";
    obs::WriteLabelValue(o, self->event_.name());
    o << "\"}";
  };
  auto line = [&os, &label](const char* name, uint64_t value) {
    os << name;
    label(os);
    os << " " << value << "\n";
  };
  line("spin_remote_client_raises_total", self->raises_);
  line("spin_remote_client_retries_total", self->retries_);
  line("spin_remote_client_timeouts_total", self->timeouts_);
  line("spin_remote_client_dead_raises_total", self->dead_raises_);
  line("spin_remote_client_revoke_notices_total", self->revoke_notices_);
  obs::HistogramSnapshot snap = self->roundtrip_.Snapshot();
  if (snap.count != 0) {
    for (double q : {0.5, 0.9, 0.99}) {
      os << "spin_remote_roundtrip_ns{host=\"";
      obs::WriteLabelValue(os, self->host_.host_name());
      os << "\",event=\"";
      obs::WriteLabelValue(os, self->event_.name());
      os << "\",quantile=\"" << q << "\"} " << snap.Percentile(q) << "\n";
    }
  }
}

}  // namespace remote
}  // namespace spin
