// The exporter: the server half of remote event dispatch.
//
// An Exporter listens on a UDP port of its host and makes selected local
// events raisable from other hosts. For each request it materializes a
// RaiseFrame from the wire values (VAR parameters get copy-in/copy-out
// storage), raises the event through the ordinary dispatcher — guards,
// ordering, result folding and all — and ships the result, the final VAR
// values, or the thrown exception back in the reply.
//
// Delivery is at-most-once per request id: the reply to every sync request
// is cached keyed by (source ip, source port, request id), and a duplicate
// delivery — a retransmission whose original did arrive — replays the
// cached reply without re-raising the event. Duplicate async requests are
// simply dropped. The cache is a FIFO window (kDedupWindow entries), sized
// far beyond any retry budget a proxy can configure.
#ifndef SRC_REMOTE_EXPORTER_H_
#define SRC_REMOTE_EXPORTER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>

#include "src/net/host.h"
#include "src/remote/marshal.h"
#include "src/remote/wire_format.h"

namespace spin {
namespace remote {

class Exporter {
 public:
  static constexpr size_t kDedupWindow = 1024;

  explicit Exporter(net::Host& host, uint16_t port = kDefaultRemotePort);
  ~Exporter();
  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  // Registers `event` for remote raising under its name. Throws
  // RemoteError(kUnmarshalable) when the signature cannot cross the wire,
  // so an export that succeeds can serve every request shape it admits.
  void Export(EventBase& event);

  // Withdraws an export. Requests for it now earn a kUnbound reply — the
  // proxy side turns that into RemoteError(kDead) instead of retrying
  // against a binding that will never come back.
  void Unexport(EventBase& event);

  uint16_t port() const { return port_; }
  uint64_t requests() const { return requests_; }
  uint64_t dedup_hits() const { return dedup_hits_; }
  uint64_t exceptions() const { return exceptions_; }
  uint64_t bad_requests() const { return bad_requests_; }
  uint64_t unbound_requests() const { return unbound_; }

 private:
  struct Entry {
    EventBase* event;
    MarshalPlan plan;
  };
  using DedupKey = std::tuple<uint32_t, uint16_t, uint64_t>;

  void OnDatagram(const net::Packet& packet);
  ReplyMsg Dispatch(const RequestMsg& request);
  static void ExportMetricsSource(void* ctx, std::ostream& os);

  net::Host& host_;
  uint16_t port_;
  std::unique_ptr<net::UdpSocket> socket_;
  std::map<std::string, Entry> exports_;
  std::set<std::string> withdrawn_;  // exported once, then removed

  std::map<DedupKey, std::string> replay_;  // encoded cached replies
  std::deque<DedupKey> replay_fifo_;

  uint64_t requests_ = 0;
  uint64_t dedup_hits_ = 0;
  uint64_t exceptions_ = 0;
  uint64_t bad_requests_ = 0;
  uint64_t unbound_ = 0;
};

}  // namespace remote
}  // namespace spin

#endif  // SRC_REMOTE_EXPORTER_H_
