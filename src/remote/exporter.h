// The exporter: the server half of remote event dispatch.
//
// An Exporter listens on a UDP port of its host and makes selected local
// events raisable from other hosts. For each request it materializes a
// RaiseFrame from the wire values (VAR parameters get copy-in/copy-out
// storage), raises the event through the ordinary dispatcher — guards,
// ordering, result folding and all — and ships the result, the final VAR
// values, or the thrown exception back in the reply.
//
// Installation-time authorization (§2.5 across the wire): before raising,
// a remote host must bind. The BindRequest carries the caller's identity
// (module name) and an opaque credential blob; the exporter materializes
// an AuthRequest — requestor is a Module named after the wire identity,
// credentials points at a RemoteBindInfo — and runs it through the event
// owner's Dispatcher::Authorize, the same §2.5 callback a local install
// consults. The authorizer may deny, grant, or grant-with-imposed-guards;
// imposed guards must be wireable micro-programs (see WireableGuard) so
// the proxy can evaluate them before marshaling. A grant mints a random
// 64-bit capability token that must accompany every raise. Tokens are
// bearer capabilities in the Exokernel secure-binding style: possession,
// not source address, is the authority.
//
// Revocation: Unexport (and the explicit Revoke) invalidates tokens,
// pushes a Revoke notice to each bound proxy, and makes raises bearing a
// stale token fail fast with kRevoked. Imposed guards are also enforced
// exporter-side on every raise — proxy-side evaluation saves the
// roundtrip, exporter-side evaluation is the trust boundary.
//
// Delivery is at-most-once per request id: the reply to every sync request
// (and every bind) is cached keyed by (source ip, source port, capability
// token, request id), and a duplicate delivery — a retransmission whose
// original did arrive — replays the cached reply without re-raising the
// event. Scoping by token confines each cache entry to the binding it was
// minted for, so a proxy re-bound on a reused port cannot be answered
// with its predecessor's replies.
// Duplicate async requests are simply dropped. The cache is a FIFO window
// (kDedupWindow entries), sized far beyond any retry budget a proxy can
// configure.
#ifndef SRC_REMOTE_EXPORTER_H_
#define SRC_REMOTE_EXPORTER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>

#include "src/net/host.h"
#include "src/remote/marshal.h"
#include "src/remote/wire_format.h"

namespace spin {
namespace remote {

// What a bind-time AuthRequest's `credentials` points at: the wire-carried
// caller identity and credential blob, plus where the request came from.
// Exporter-side authorizers cast `credentials` to this.
struct RemoteBindInfo {
  uint32_t source_ip = 0;
  uint16_t source_port = 0;
  std::string module_name;  // also the name of the requestor Module
  std::string credential;   // opaque; meaning is the authorizer's business
};

class Exporter {
 public:
  static constexpr size_t kDedupWindow = 1024;

  explicit Exporter(net::Host& host, uint16_t port = kDefaultRemotePort);
  ~Exporter();
  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  // Registers `event` for remote raising under its name. Throws
  // RemoteError(kUnmarshalable) when the signature cannot cross the wire,
  // so an export that succeeds can serve every request shape it admits.
  void Export(EventBase& event);

  // Withdraws an export: every outstanding capability for the event is
  // revoked (notices pushed to the bound proxies) and requests for it now
  // earn a kRevoked / kUnbound reply instead of a dispatch.
  void Unexport(EventBase& event);

  // Revokes one capability token. The bound proxy is notified and every
  // subsequent raise bearing the token fails with kRevoked; other bindings
  // to the same event are untouched. Returns false for unknown tokens.
  bool Revoke(uint64_t token);

  uint16_t port() const { return port_; }
  uint64_t requests() const { return requests_; }
  uint64_t dedup_hits() const { return dedup_hits_; }
  uint64_t exceptions() const { return exceptions_; }
  uint64_t bad_requests() const { return bad_requests_; }
  uint64_t unbound_requests() const { return unbound_; }
  uint64_t binds() const { return binds_; }
  uint64_t auth_denied() const { return auth_denied_; }
  uint64_t revoked_tokens() const { return revoked_tokens_; }
  uint64_t revoked_raises() const { return revoked_raises_; }
  uint64_t guard_rejected() const { return guard_rejected_; }
  size_t bound_clients() const { return bound_.size(); }

 private:
  struct Entry {
    EventBase* event;
    MarshalPlan plan;
  };
  // One granted capability: who holds it, for which event, and the
  // authorizer-imposed guards enforced on every raise it accompanies.
  struct BoundClient {
    std::string event_name;
    uint32_t ip = 0;
    uint16_t port = 0;
    std::unique_ptr<Module> module;       // identity for auth callbacks
    std::shared_ptr<Binding> binding;     // carries the imposed guards
  };
  // (source ip, source port, message type, capability token, request id).
  // The token scopes raise dedup to one binding: a proxy re-bound on the
  // same port holds a fresh token, so cached replies minted for its dead
  // predecessor can never answer it. Binds carry token 0; the type byte
  // keeps their id space disjoint from raises.
  using DedupKey = std::tuple<uint32_t, uint16_t, uint8_t, uint64_t, uint64_t>;

  void OnDatagram(const net::Packet& packet);
  ReplyMsg Dispatch(const RequestMsg& request);
  BindReplyMsg Bind(const BindRequestMsg& request, uint32_t source_ip,
                    uint16_t source_port);
  void RevokeClient(uint64_t token, const BoundClient& client);
  uint64_t MintToken();
  static void ExportMetricsSource(void* ctx, std::ostream& os);

  net::Host& host_;
  uint16_t port_;
  std::unique_ptr<net::UdpSocket> socket_;
  std::map<std::string, Entry> exports_;
  std::set<std::string> withdrawn_;  // exported once, then removed

  std::map<uint64_t, BoundClient> bound_;  // by capability token
  uint64_t token_rng_;  // splitmix64 state: deterministic per (host, port)

  std::map<DedupKey, std::string> replay_;  // encoded cached replies
  std::deque<DedupKey> replay_fifo_;

  uint64_t requests_ = 0;
  uint64_t dedup_hits_ = 0;
  uint64_t exceptions_ = 0;
  uint64_t bad_requests_ = 0;
  uint64_t unbound_ = 0;
  uint64_t binds_ = 0;
  uint64_t auth_denied_ = 0;
  uint64_t revoked_tokens_ = 0;
  uint64_t revoked_raises_ = 0;
  uint64_t guard_rejected_ = 0;
};

}  // namespace remote
}  // namespace spin

#endif  // SRC_REMOTE_EXPORTER_H_
