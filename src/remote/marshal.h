// Marshaling plans: what of a ProcSig can cross the wire, and how.
//
// Remote dispatch carries exactly what the dispatcher's 8-byte argument
// slots carry — scalars. A by-value scalar parameter travels as its slot.
// A VAR (by-ref) parameter travels by copy-in/copy-out: the proxy reads
// the pointee, ships the value, and writes the exporter's final value back
// into the caller's variable when the reply arrives — Modula-3 VAR
// semantics over a network that cannot share an address space.
//
// Anything else — a by-value pointer, a VAR parameter whose pointee is not
// a registered scalar type, a pointer result — is unmarshalable, and
// PlanFor refuses it with RemoteError(kUnmarshalable). The refusal happens
// at proxy-install / export time, never at raise time: a proxy that
// installs is a proxy that can always marshal.
#ifndef SRC_REMOTE_MARSHAL_H_
#define SRC_REMOTE_MARSHAL_H_

#include <cstdint>
#include <vector>

#include "src/remote/wire_format.h"
#include "src/types/signature.h"

namespace spin {
namespace remote {

struct MarshalPlan {
  std::vector<WireParam> params;  // tag per event parameter, in order
  TypeClass result_cls = TypeClass::kVoid;
  size_t num_byref = 0;

  bool has_result() const { return result_cls != TypeClass::kVoid; }
};

// Builds the plan for `sig`, or throws RemoteError(kUnmarshalable) naming
// the offending parameter. `what` labels the error (the event name).
MarshalPlan PlanFor(const ProcSig& sig, const std::string& what);

// Reads the scalar of class `cls` at `p`, widened to a 64-bit wire value
// using the same convention as SlotCodec (signed values sign-extend,
// doubles bit-cast). Assumes the host's native layout (little-endian
// x86-64 — the same assumption the stub compiler bakes in).
uint64_t LoadScalar(TypeClass cls, const void* p);

// Writes the wire value `v` back as a scalar of class `cls` at `p`.
void StoreScalar(TypeClass cls, void* p, uint64_t v);

}  // namespace remote
}  // namespace spin

#endif  // SRC_REMOTE_MARSHAL_H_
