#include "src/remote/wire_format.h"

namespace spin {
namespace remote {
namespace {

void Put8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void Put16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v));
}

void Put64(std::string& out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>(v >> shift));
  }
}

// Bounds-checked big-endian reader over the datagram payload.
struct Reader {
  const uint8_t* data;
  size_t len;
  size_t pos = 0;

  bool Get8(uint8_t* v) {
    if (pos + 1 > len) {
      return false;
    }
    *v = data[pos++];
    return true;
  }
  bool Get16(uint16_t* v) {
    if (pos + 2 > len) {
      return false;
    }
    *v = static_cast<uint16_t>((data[pos] << 8) | data[pos + 1]);
    pos += 2;
    return true;
  }
  bool Get64(uint64_t* v) {
    if (pos + 8 > len) {
      return false;
    }
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r = (r << 8) | data[pos + i];
    }
    pos += 8;
    *v = r;
    return true;
  }
  bool GetBytes(size_t n, std::string* v) {
    if (pos + n > len) {
      return false;
    }
    v->assign(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return true;
  }
};

void PutHeader(std::string& out, MsgType type) {
  Put16(out, kWireMagic);
  Put8(out, kWireVersion);
  Put8(out, static_cast<uint8_t>(type));
}

bool GetHeader(Reader& r, MsgType expect) {
  uint16_t magic;
  uint8_t version;
  uint8_t type;
  if (!r.Get16(&magic) || !r.Get8(&version) || !r.Get8(&type)) {
    return false;
  }
  return magic == kWireMagic && version == kWireVersion &&
         type == static_cast<uint8_t>(expect);
}

}  // namespace

std::string EncodeRequest(const RequestMsg& msg) {
  std::string out;
  out.reserve(19 + msg.event_name.size() + 9 * msg.params.size());
  PutHeader(out, MsgType::kRequest);
  Put8(out, static_cast<uint8_t>(msg.kind));
  Put64(out, msg.request_id);
  Put16(out, static_cast<uint16_t>(msg.event_name.size()));
  out.append(msg.event_name);
  Put8(out, static_cast<uint8_t>(msg.params.size()));
  for (const WireParam& p : msg.params) {
    Put8(out, static_cast<uint8_t>(p.cls | (p.by_ref ? 0x80 : 0)));
  }
  for (uint64_t v : msg.args) {
    Put64(out, v);
  }
  return out;
}

std::string EncodeReply(const ReplyMsg& msg) {
  std::string out;
  out.reserve(24 + 8 * msg.byref.size() + msg.error.size());
  PutHeader(out, MsgType::kReply);
  Put8(out, static_cast<uint8_t>(msg.status));
  Put64(out, msg.request_id);
  Put64(out, msg.result);
  Put8(out, static_cast<uint8_t>(msg.byref.size()));
  for (uint64_t v : msg.byref) {
    Put64(out, v);
  }
  Put16(out, static_cast<uint16_t>(msg.error.size()));
  out.append(msg.error);
  return out;
}

bool DecodeRequest(const std::string& wire, RequestMsg* out) {
  Reader r{reinterpret_cast<const uint8_t*>(wire.data()), wire.size()};
  if (!GetHeader(r, MsgType::kRequest)) {
    return false;
  }
  uint8_t kind;
  if (!r.Get8(&kind) || (kind != static_cast<uint8_t>(RaiseKind::kSync) &&
                         kind != static_cast<uint8_t>(RaiseKind::kAsync))) {
    return false;
  }
  out->kind = static_cast<RaiseKind>(kind);
  uint16_t name_len;
  if (!r.Get64(&out->request_id) || !r.Get16(&name_len) ||
      !r.GetBytes(name_len, &out->event_name)) {
    return false;
  }
  uint8_t argc;
  if (!r.Get8(&argc)) {
    return false;
  }
  out->params.clear();
  out->args.clear();
  out->params.reserve(argc);
  out->args.reserve(argc);
  for (int i = 0; i < argc; ++i) {
    uint8_t tag;
    if (!r.Get8(&tag)) {
      return false;
    }
    out->params.push_back(
        WireParam{static_cast<uint8_t>(tag & 0x7f), (tag & 0x80) != 0});
  }
  for (int i = 0; i < argc; ++i) {
    uint64_t v;
    if (!r.Get64(&v)) {
      return false;
    }
    out->args.push_back(v);
  }
  return r.pos == r.len;
}

bool DecodeReply(const std::string& wire, ReplyMsg* out) {
  Reader r{reinterpret_cast<const uint8_t*>(wire.data()), wire.size()};
  if (!GetHeader(r, MsgType::kReply)) {
    return false;
  }
  uint8_t status;
  if (!r.Get8(&status) || status > static_cast<uint8_t>(WireStatus::kBadRequest)) {
    return false;
  }
  out->status = static_cast<WireStatus>(status);
  uint8_t nbyref;
  if (!r.Get64(&out->request_id) || !r.Get64(&out->result) ||
      !r.Get8(&nbyref)) {
    return false;
  }
  out->byref.clear();
  out->byref.reserve(nbyref);
  for (int i = 0; i < nbyref; ++i) {
    uint64_t v;
    if (!r.Get64(&v)) {
      return false;
    }
    out->byref.push_back(v);
  }
  uint16_t errlen;
  if (!r.Get16(&errlen) || !r.GetBytes(errlen, &out->error)) {
    return false;
  }
  return r.pos == r.len;
}

bool PeekType(const std::string& wire, MsgType* out) {
  if (wire.size() < 4) {
    return false;
  }
  const uint8_t* d = reinterpret_cast<const uint8_t*>(wire.data());
  uint16_t magic = static_cast<uint16_t>((d[0] << 8) | d[1]);
  if (magic != kWireMagic || d[2] != kWireVersion) {
    return false;
  }
  if (d[3] != static_cast<uint8_t>(MsgType::kRequest) &&
      d[3] != static_cast<uint8_t>(MsgType::kReply)) {
    return false;
  }
  *out = static_cast<MsgType>(d[3]);
  return true;
}

}  // namespace remote
}  // namespace spin
