#include "src/remote/wire_format.h"

namespace spin {
namespace remote {
namespace {

void Put8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void Put16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v));
}

void Put32(std::string& out, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>(v >> shift));
  }
}

void Put64(std::string& out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>(v >> shift));
  }
}

// Bounds-checked big-endian reader over the datagram payload.
struct Reader {
  const uint8_t* data;
  size_t len;
  size_t pos = 0;

  bool Get8(uint8_t* v) {
    if (pos + 1 > len) {
      return false;
    }
    *v = data[pos++];
    return true;
  }
  bool Get16(uint16_t* v) {
    if (pos + 2 > len) {
      return false;
    }
    *v = static_cast<uint16_t>((data[pos] << 8) | data[pos + 1]);
    pos += 2;
    return true;
  }
  bool Get32(uint32_t* v) {
    if (pos + 4 > len) {
      return false;
    }
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r = (r << 8) | data[pos + i];
    }
    pos += 4;
    *v = r;
    return true;
  }
  bool Get64(uint64_t* v) {
    if (pos + 8 > len) {
      return false;
    }
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r = (r << 8) | data[pos + i];
    }
    pos += 8;
    *v = r;
    return true;
  }
  bool GetBytes(size_t n, std::string* v) {
    if (pos + n > len) {
      return false;
    }
    v->assign(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return true;
  }
};

void PutHeader(std::string& out, MsgType type) {
  Put16(out, kWireMagic);
  Put8(out, kWireVersion);
  Put8(out, static_cast<uint8_t>(type));
}

bool GetHeader(Reader& r, MsgType expect) {
  uint16_t magic;
  uint8_t version;
  uint8_t type;
  if (!r.Get16(&magic) || !r.Get8(&version) || !r.Get8(&type)) {
    return false;
  }
  return magic == kWireMagic && version == kWireVersion &&
         type == static_cast<uint8_t>(expect);
}

// A 2-byte-length-prefixed string.
void PutString(std::string& out, const std::string& s) {
  Put16(out, static_cast<uint16_t>(s.size()));
  out.append(s);
}

bool GetString(Reader& r, std::string* s) {
  uint16_t n;
  return r.Get16(&n) && r.GetBytes(n, s);
}

void PutParams(std::string& out, const std::vector<WireParam>& params) {
  Put8(out, static_cast<uint8_t>(params.size()));
  for (const WireParam& p : params) {
    Put8(out, static_cast<uint8_t>(p.cls | (p.by_ref ? 0x80 : 0)));
  }
}

bool GetParams(Reader& r, std::vector<WireParam>* params, uint8_t* argc) {
  if (!r.Get8(argc) || *argc > kMaxWireArgs) {
    return false;
  }
  params->clear();
  params->reserve(*argc);
  for (int i = 0; i < *argc; ++i) {
    uint8_t tag;
    if (!r.Get8(&tag)) {
      return false;
    }
    params->push_back(
        WireParam{static_cast<uint8_t>(tag & 0x7f), (tag & 0x80) != 0});
  }
  return true;
}

void PutGuard(std::string& out, const micro::Program& prog) {
  Put8(out, static_cast<uint8_t>(prog.num_args()));
  Put16(out, static_cast<uint16_t>(prog.code().size()));
  for (const micro::Insn& insn : prog.code()) {
    Put8(out, static_cast<uint8_t>(insn.op));
    Put8(out, insn.dst);
    Put8(out, insn.a);
    Put8(out, insn.b);
    Put64(out, insn.imm);
  }
}

// Structural parse only: framing, counts, and field widths. Semantic
// admission (opcode validity, bounds, termination, purity) is the
// verifier's job — DecodeBindReply runs micro::Verify over the parsed
// program so a hostile guard produces a typed refusal the proxy can
// surface, rather than a dropped datagram and a timeout. Out-of-range
// opcode bytes are preserved via the cast; the verifier rejects them as
// kBadOpcode.
bool GetGuard(Reader& r, micro::Program* out) {
  uint8_t num_args;
  uint16_t ninsn;
  if (!r.Get8(&num_args) || num_args > micro::kMaxArgs || !r.Get16(&ninsn) ||
      ninsn == 0 || ninsn > kMaxWireGuardInsns) {
    return false;
  }
  std::vector<micro::Insn> code;
  code.reserve(ninsn);
  for (int i = 0; i < ninsn; ++i) {
    uint8_t op;
    micro::Insn insn;
    if (!r.Get8(&op) || !r.Get8(&insn.dst) || !r.Get8(&insn.a) ||
        !r.Get8(&insn.b) || !r.Get64(&insn.imm)) {
      return false;
    }
    insn.op = static_cast<micro::Op>(op);
    code.push_back(insn);
  }
  *out = micro::Program(std::move(code), num_args, /*functional=*/true);
  return true;
}

}  // namespace

bool WireableGuard(const micro::Program& prog) {
  // Mirror of the receiver's admission check: the sender refuses to
  // serialize exactly what the peer's decoder would refuse to admit, so a
  // guard that leaves this host is never silently dropped on the other
  // side. WireGuardLimits forbids loads and stores alike — addresses do
  // not cross the wire.
  return prog.functional() &&
         micro::Verify(prog, micro::WireGuardLimits()).ok();
}

std::string EncodeRequest(const RequestMsg& msg) {
  std::string out;
  out.reserve(39 + msg.event_name.size() + 9 * msg.params.size());
  PutHeader(out, MsgType::kRequest);
  Put8(out, static_cast<uint8_t>(msg.kind));
  Put64(out, msg.request_id);
  Put64(out, msg.token);
  PutString(out, msg.event_name);
  PutParams(out, msg.params);
  for (uint64_t v : msg.args) {
    Put64(out, v);
  }
  // Optional trailer: emitted only for traced raises, so untraced frames
  // are byte-identical to pre-trailer v2 and old decoders still read them.
  if (msg.span_id != 0) {
    Put64(out, msg.span_id);
    Put32(out, msg.origin_host);
  }
  return out;
}

std::string EncodeReply(const ReplyMsg& msg) {
  std::string out;
  out.reserve(24 + 8 * msg.byref.size() + msg.error.size());
  PutHeader(out, MsgType::kReply);
  Put8(out, static_cast<uint8_t>(msg.status));
  Put64(out, msg.request_id);
  Put64(out, msg.result);
  Put8(out, static_cast<uint8_t>(msg.byref.size()));
  for (uint64_t v : msg.byref) {
    Put64(out, v);
  }
  PutString(out, msg.error);
  return out;
}

std::string EncodeBindRequest(const BindRequestMsg& msg) {
  std::string out;
  out.reserve(19 + msg.event_name.size() + msg.module_name.size() +
              msg.credential.size() + msg.params.size());
  PutHeader(out, MsgType::kBindRequest);
  Put64(out, msg.bind_id);
  PutString(out, msg.event_name);
  PutString(out, msg.module_name);
  PutString(out, msg.credential);
  PutParams(out, msg.params);
  return out;
}

std::string EncodeBindReply(const BindReplyMsg& msg) {
  std::string out;
  out.reserve(24 + msg.error.size());
  PutHeader(out, MsgType::kBindReply);
  Put8(out, static_cast<uint8_t>(msg.status));
  Put64(out, msg.bind_id);
  Put64(out, msg.token);
  Put8(out, static_cast<uint8_t>(msg.guards.size()));
  for (const micro::Program& guard : msg.guards) {
    PutGuard(out, guard);
  }
  PutString(out, msg.error);
  return out;
}

std::string EncodeRevoke(const RevokeMsg& msg) {
  std::string out;
  out.reserve(14 + msg.event_name.size());
  PutHeader(out, MsgType::kRevoke);
  Put64(out, msg.token);
  PutString(out, msg.event_name);
  return out;
}

bool DecodeRequest(const std::string& wire, RequestMsg* out) {
  Reader r{reinterpret_cast<const uint8_t*>(wire.data()), wire.size()};
  if (!GetHeader(r, MsgType::kRequest)) {
    return false;
  }
  uint8_t kind;
  if (!r.Get8(&kind) || (kind != static_cast<uint8_t>(RaiseKind::kSync) &&
                         kind != static_cast<uint8_t>(RaiseKind::kAsync))) {
    return false;
  }
  out->kind = static_cast<RaiseKind>(kind);
  if (!r.Get64(&out->request_id) || !r.Get64(&out->token) ||
      !GetString(r, &out->event_name)) {
    return false;
  }
  uint8_t argc;
  if (!GetParams(r, &out->params, &argc)) {
    return false;
  }
  out->args.clear();
  out->args.reserve(argc);
  for (int i = 0; i < argc; ++i) {
    uint64_t v;
    if (!r.Get64(&v)) {
      return false;
    }
    out->args.push_back(v);
  }
  // Causal-trace trailer: absent on untraced/old frames (null span), and
  // when present it must be exactly 12 bytes with a nonzero span id — a
  // zero id would re-encode without the trailer, breaking canonicality.
  out->span_id = 0;
  out->origin_host = 0;
  if (r.pos != r.len) {
    if (!r.Get64(&out->span_id) || !r.Get32(&out->origin_host) ||
        out->span_id == 0) {
      return false;
    }
  }
  return r.pos == r.len;
}

bool DecodeReply(const std::string& wire, ReplyMsg* out) {
  Reader r{reinterpret_cast<const uint8_t*>(wire.data()), wire.size()};
  if (!GetHeader(r, MsgType::kReply)) {
    return false;
  }
  uint8_t status;
  if (!r.Get8(&status) ||
      status > static_cast<uint8_t>(WireStatus::kGuardRejected)) {
    return false;
  }
  out->status = static_cast<WireStatus>(status);
  uint8_t nbyref;
  if (!r.Get64(&out->request_id) || !r.Get64(&out->result) ||
      !r.Get8(&nbyref) || nbyref > kMaxWireArgs) {
    return false;
  }
  out->byref.clear();
  out->byref.reserve(nbyref);
  for (int i = 0; i < nbyref; ++i) {
    uint64_t v;
    if (!r.Get64(&v)) {
      return false;
    }
    out->byref.push_back(v);
  }
  if (!GetString(r, &out->error)) {
    return false;
  }
  return r.pos == r.len;
}

bool DecodeBindRequest(const std::string& wire, BindRequestMsg* out) {
  Reader r{reinterpret_cast<const uint8_t*>(wire.data()), wire.size()};
  if (!GetHeader(r, MsgType::kBindRequest)) {
    return false;
  }
  if (!r.Get64(&out->bind_id) || !GetString(r, &out->event_name) ||
      !GetString(r, &out->module_name) || !GetString(r, &out->credential)) {
    return false;
  }
  uint8_t argc;
  if (!GetParams(r, &out->params, &argc)) {
    return false;
  }
  return r.pos == r.len;
}

bool DecodeBindReply(const std::string& wire, BindReplyMsg* out) {
  Reader r{reinterpret_cast<const uint8_t*>(wire.data()), wire.size()};
  if (!GetHeader(r, MsgType::kBindReply)) {
    return false;
  }
  uint8_t status;
  if (!r.Get8(&status) ||
      status > static_cast<uint8_t>(WireStatus::kGuardRejected)) {
    return false;
  }
  out->status = static_cast<WireStatus>(status);
  uint8_t nguards;
  if (!r.Get64(&out->bind_id) || !r.Get64(&out->token) ||
      !r.Get8(&nguards) || nguards > kMaxWireGuards) {
    return false;
  }
  out->guards.clear();
  out->guards.reserve(nguards);
  out->guard_verify = micro::VerifyStatus::kOk;
  out->guard_verify_index = 0;
  for (int i = 0; i < nguards; ++i) {
    micro::Program guard;
    if (!GetGuard(r, &guard)) {
      return false;  // framing damage: the datagram is noise, drop it
    }
    // Admission: every wire-received program passes the verifier before it
    // can reach an evaluator (interpreter or JIT). The first refusal is
    // recorded and the remaining guards still parse structurally so the
    // exact-length check below keeps validating the framing.
    if (out->guard_verify == micro::VerifyStatus::kOk) {
      micro::VerifyResult v = micro::Verify(guard, micro::WireGuardLimits());
      if (!v.ok()) {
        out->guard_verify = v.status;
        out->guard_verify_index = static_cast<uint8_t>(i);
      }
    }
    out->guards.push_back(std::move(guard));
  }
  if (out->guard_verify != micro::VerifyStatus::kOk) {
    out->guards.clear();  // refused programs never reach an evaluator
  }
  if (!GetString(r, &out->error)) {
    return false;
  }
  return r.pos == r.len;
}

bool DecodeRevoke(const std::string& wire, RevokeMsg* out) {
  Reader r{reinterpret_cast<const uint8_t*>(wire.data()), wire.size()};
  if (!GetHeader(r, MsgType::kRevoke)) {
    return false;
  }
  if (!r.Get64(&out->token) || !GetString(r, &out->event_name)) {
    return false;
  }
  return r.pos == r.len;
}

bool PeekType(const std::string& wire, MsgType* out) {
  if (wire.size() < 4) {
    return false;
  }
  const uint8_t* d = reinterpret_cast<const uint8_t*>(wire.data());
  uint16_t magic = static_cast<uint16_t>((d[0] << 8) | d[1]);
  if (magic != kWireMagic || d[2] != kWireVersion) {
    return false;
  }
  if (d[3] < static_cast<uint8_t>(MsgType::kRequest) ||
      d[3] > static_cast<uint8_t>(MsgType::kRevoke)) {
    return false;
  }
  *out = static_cast<MsgType>(d[3]);
  return true;
}

}  // namespace remote
}  // namespace spin
