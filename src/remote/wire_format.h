// Wire messages for remote event dispatch.
//
// A remote raise travels as a single UDP datagram over the simulated
// network. The format is deliberately small and self-describing: the
// request carries the event name and the marshal tags of every argument so
// the exporter can validate the caller's view of the signature against its
// own before touching the dispatcher.
//
// All integers are big-endian, matching the rest of the packet code.
//
//   header:  magic(2)=0x5350 "SP"  version(1)=1  type(1)
//   request: kind(1)  request_id(8)  name_len(2)  name  argc(1)
//            argc x tag(1)   [tag = TypeClass | by_ref << 7]
//            argc x value(8) [by-value: the 64-bit argument slot;
//                             by-ref: the pointee scalar widened to 64 bits]
//   reply:   status(1)  request_id(8)  result(8)  nbyref(1)
//            nbyref x value(8)  [copy-out values of VAR params, in order]
//            errlen(2)  error
#ifndef SRC_REMOTE_WIRE_FORMAT_H_
#define SRC_REMOTE_WIRE_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace spin {
namespace remote {

inline constexpr uint16_t kWireMagic = 0x5350;  // "SP"
inline constexpr uint8_t kWireVersion = 1;

// Default UDP port an Exporter listens on.
inline constexpr uint16_t kDefaultRemotePort = 7007;

enum class MsgType : uint8_t {
  kRequest = 1,
  kReply = 2,
};

enum class RaiseKind : uint8_t {
  kSync = 1,   // the raiser blocks for the reply
  kAsync = 2,  // fire-and-forget; the exporter never replies
};

enum class WireStatus : uint8_t {
  kOk = 0,
  kException = 1,    // the remote dispatch threw; error carries what()
  kUnbound = 2,      // the event was exported once but has been withdrawn
  kNoSuchEvent = 3,  // the exporter never heard of this event
  kBadRequest = 4,   // malformed message or signature mismatch
};

struct WireParam {
  uint8_t cls = 0;      // TypeClass of the wire value
  bool by_ref = false;  // VAR parameter: value copies in and out

  friend bool operator==(const WireParam&, const WireParam&) = default;
};

struct RequestMsg {
  RaiseKind kind = RaiseKind::kSync;
  uint64_t request_id = 0;
  std::string event_name;
  std::vector<WireParam> params;
  std::vector<uint64_t> args;  // one wire value per param
};

struct ReplyMsg {
  WireStatus status = WireStatus::kOk;
  uint64_t request_id = 0;
  uint64_t result = 0;
  std::vector<uint64_t> byref;  // copy-out values, VAR params in order
  std::string error;
};

std::string EncodeRequest(const RequestMsg& msg);
std::string EncodeReply(const ReplyMsg& msg);

// Decoders return false on anything malformed (bad magic/version/lengths);
// the caller drops the datagram, it never reaches the dispatcher.
bool DecodeRequest(const std::string& wire, RequestMsg* out);
bool DecodeReply(const std::string& wire, ReplyMsg* out);

// Classifies a datagram without decoding the body; false when it is not a
// remote-dispatch message at all.
bool PeekType(const std::string& wire, MsgType* out);

}  // namespace remote
}  // namespace spin

#endif  // SRC_REMOTE_WIRE_FORMAT_H_
