// Wire messages for remote event dispatch.
//
// A remote raise travels as a single UDP datagram over the simulated
// network. The format is deliberately small and self-describing: the
// request carries the event name and the marshal tags of every argument so
// the exporter can validate the caller's view of the signature against its
// own before touching the dispatcher.
//
// Version 2 adds install-time authorization (§2.5 across the wire): a
// proxy first performs a BindRequest/BindReply handshake carrying its
// identity (module name) and an opaque credential blob. The exporter runs
// the event's authorizer; a granted bind returns a capability token that
// must accompany every raise, plus any authorizer-imposed guard clauses
// serialized as micro-programs so the proxy can evaluate them before
// marshaling (a guard rejection then costs no roundtrip). Revocations are
// pushed to the bound proxy as Revoke notices, and raises bearing a stale
// token fail with kRevoked.
//
// All integers are big-endian, matching the rest of the packet code.
//
//   header:   magic(2)=0x5350 "SP"  version(1)=2  type(1)
//   request:  kind(1)  request_id(8)  token(8)  name_len(2)  name  argc(1)
//             argc x tag(1)   [tag = TypeClass | by_ref << 7]
//             argc x value(8) [by-value: the 64-bit argument slot;
//                              by-ref: the pointee scalar widened to 64 bits]
//             [span_id(8) origin_host(4)]  -- optional causal-trace trailer:
//             present iff the raiser captured this raise (span_id != 0);
//             absent frames decode with a null span, so v2 peers
//             interoperate both ways. A present trailer with span_id == 0
//             is malformed. Trailer presence doubles as the wire's sampled
//             bit: under sampled tracing the raiser omits the trailer for
//             sampled-out raises and the exporter pins the skip, so a
//             sampled causal tree is captured whole on both hosts or on
//             neither — no format change, no new flag byte.
//   reply:    status(1)  request_id(8)  result(8)  nbyref(1)
//             nbyref x value(8)  [copy-out values of VAR params, in order]
//             errlen(2)  error
//   bind req: bind_id(8)  name_len(2)  name  module_len(2)  module
//             cred_len(2)  credential  argc(1)  argc x tag(1)
//   bind rep: status(1)  bind_id(8)  token(8)  nguards(1)
//             nguards x [num_args(1)  ninsn(2)
//                        ninsn x insn(op(1) dst(1) a(1) b(1) imm(8))]
//             errlen(2)  error
//   revoke:   token(8)  name_len(2)  name
#ifndef SRC_REMOTE_WIRE_FORMAT_H_
#define SRC_REMOTE_WIRE_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/micro/program.h"
#include "src/micro/verify.h"

namespace spin {
namespace remote {

inline constexpr uint16_t kWireMagic = 0x5350;  // "SP"
inline constexpr uint8_t kWireVersion = 2;

// Default UDP port an Exporter listens on.
inline constexpr uint16_t kDefaultRemotePort = 7007;

// Decoder bounds: an event carries at most kMaxEventArgs (8) parameters, a
// bind reply at most this many imposed guards, each of bounded size. The
// decoders reject anything larger before allocating.
inline constexpr size_t kMaxWireArgs = 8;
inline constexpr size_t kMaxWireGuards = 8;
inline constexpr size_t kMaxWireGuardInsns = 256;

enum class MsgType : uint8_t {
  kRequest = 1,
  kReply = 2,
  kBindRequest = 3,
  kBindReply = 4,
  kRevoke = 5,
};

enum class RaiseKind : uint8_t {
  kSync = 1,   // the raiser blocks for the reply
  kAsync = 2,  // fire-and-forget; the exporter never replies
};

enum class WireStatus : uint8_t {
  kOk = 0,
  kException = 1,      // the remote dispatch threw; error carries what()
  kUnbound = 2,        // the event was exported once but has been withdrawn
  kNoSuchEvent = 3,    // the exporter never heard of this event
  kBadRequest = 4,     // malformed message or signature mismatch
  kDenied = 5,         // the exporter's authorizer refused the bind
  kRevoked = 6,        // the request's capability token is stale / revoked
  kGuardRejected = 7,  // an imposed guard rejected the raise exporter-side
};

struct WireParam {
  uint8_t cls = 0;      // TypeClass of the wire value
  bool by_ref = false;  // VAR parameter: value copies in and out

  friend bool operator==(const WireParam&, const WireParam&) = default;
};

struct RequestMsg {
  RaiseKind kind = RaiseKind::kSync;
  uint64_t request_id = 0;
  uint64_t token = 0;  // capability granted by the bind handshake
  std::string event_name;
  std::vector<WireParam> params;
  std::vector<uint64_t> args;  // one wire value per param

  // Causal-trace trailer (0 = untraced / old frame): the raiser's wire
  // span id and its RegisterTraceHost id, so the exporter-side dispatch
  // joins the originating span tree.
  uint64_t span_id = 0;
  uint32_t origin_host = 0;
};

struct ReplyMsg {
  WireStatus status = WireStatus::kOk;
  uint64_t request_id = 0;
  uint64_t result = 0;
  std::vector<uint64_t> byref;  // copy-out values, VAR params in order
  std::string error;
};

struct BindRequestMsg {
  uint64_t bind_id = 0;        // request id for dedup/retransmission
  std::string event_name;
  std::string module_name;     // the proxy's identity (AuthRequest requestor)
  std::string credential;      // opaque blob for the exporter's authorizer
  std::vector<WireParam> params;  // the proxy's view of the signature
};

struct BindReplyMsg {
  WireStatus status = WireStatus::kOk;
  uint64_t bind_id = 0;
  uint64_t token = 0;  // valid only when status == kOk
  // Authorizer-imposed guards, serialized for proxy-side evaluation. Each
  // is a FUNCTIONAL, address-free micro-program over the event arguments.
  std::vector<micro::Program> guards;
  // Admission verdict for the received guards. The decoder splits the
  // trust boundary in two: framing damage (truncation, bad counts) still
  // fails the decode — the datagram is indistinguishable from noise — but
  // a well-framed reply whose guard program fails the micro::Verify
  // admission pass decodes successfully with the refusal recorded here
  // (and `guards` cleared), so the proxy can refuse the bind with a typed
  // error instead of timing out.
  micro::VerifyStatus guard_verify = micro::VerifyStatus::kOk;
  uint8_t guard_verify_index = 0;  // which guard failed (valid on != kOk)
  std::string error;
};

struct RevokeMsg {
  uint64_t token = 0;
  std::string event_name;
};

std::string EncodeRequest(const RequestMsg& msg);
std::string EncodeReply(const ReplyMsg& msg);
std::string EncodeBindRequest(const BindRequestMsg& msg);
std::string EncodeBindReply(const BindReplyMsg& msg);
std::string EncodeRevoke(const RevokeMsg& msg);

// Decoders return false on anything malformed (bad magic/version/lengths,
// out-of-bounds counts, invalid guard programs); the caller drops the
// datagram, it never reaches the dispatcher.
bool DecodeRequest(const std::string& wire, RequestMsg* out);
bool DecodeReply(const std::string& wire, ReplyMsg* out);
bool DecodeBindRequest(const std::string& wire, BindRequestMsg* out);
bool DecodeBindReply(const std::string& wire, BindReplyMsg* out);
bool DecodeRevoke(const std::string& wire, RevokeMsg* out);

// Classifies a datagram without decoding the body; false when it is not a
// remote-dispatch message at all.
bool PeekType(const std::string& wire, MsgType* out);

// True when `prog` may travel in a BindReply: FUNCTIONAL and admitted by
// the micro::Verify wire-guard pass — bounded, terminating, pure, and
// address-free (a program that references exporter memory is meaningless
// in the proxy's address space). Arg-relative computation only. This is
// exactly the predicate the receiving decoder enforces, so a wireable
// guard is guaranteed to be admitted on the other side.
bool WireableGuard(const micro::Program& prog);

}  // namespace remote
}  // namespace spin

#endif  // SRC_REMOTE_WIRE_FORMAT_H_
