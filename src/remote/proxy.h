// Event proxies: the client half of remote event dispatch.
//
// An EventProxy installs an ordinary (type-erased) binding on a local
// event, so a plain local `Raise` transparently becomes a remote one: the
// proxy marshals the argument slots per the event's TypeSig, ships them to
// an Exporter on another host, and — for synchronous raises — blocks the
// raiser until the reply carries back the result, the final VAR values, or
// the remote exception.
//
// "Blocks" on a discrete-event simulator means the proxy pumps the
// simulator from inside the raise: it schedules a sentinel no-op at the
// attempt deadline and runs simulator events one at a time until either
// the reply datagram is delivered or virtual time reaches the deadline.
// Each timed-out attempt retransmits the SAME request id with a doubled
// timeout (capped at max_backoff_ns) — the exporter's at-most-once window
// guarantees the event body never runs twice even when an earlier attempt
// was merely delayed, not lost. When the retry budget is exhausted the
// raise throws RemoteError(kTimeout); it never hangs.
//
// Asynchronous proxies (RaiseKind::kAsync) are fire-and-forget: the
// binding is installed async, so the marshal runs on the dispatcher's
// thread pool, which enqueues the encoded datagram into an outbox. The
// simulation thread hands outbox entries to the network with Flush() —
// the simulator itself is single-threaded, so pool threads must not touch
// it. Async proxies reject result-returning and VAR signatures at install
// (§2.6's rule, extended across the wire).
//
// A reply of kUnbound or kNoSuchEvent marks the proxy dead: the remote
// binding is gone and no retry will revive it, so every subsequent raise
// fails fast with RemoteError(kDead) without generating traffic.
#ifndef SRC_REMOTE_PROXY_H_
#define SRC_REMOTE_PROXY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/core/dispatcher.h"
#include "src/net/host.h"
#include "src/obs/obs.h"
#include "src/remote/marshal.h"
#include "src/remote/wire_format.h"
#include "src/sim/simulator.h"

namespace spin {
namespace remote {

struct ProxyOptions {
  uint32_t remote_ip = 0;                    // the exporter's host
  uint16_t remote_port = kDefaultRemotePort;
  uint16_t local_port = 7008;                // this proxy's reply socket
  RaiseKind kind = RaiseKind::kSync;
  uint32_t max_attempts = 5;                 // first send + retries
  uint64_t timeout_ns = 2'000'000;           // first attempt's deadline
  uint64_t max_backoff_ns = 32'000'000;      // timeout doubling cap
};

class EventProxy {
 public:
  // Installs the proxy binding. Throws RemoteError(kUnmarshalable) when
  // the event's signature cannot cross the wire (or, for kAsync, returns
  // a result / takes VAR parameters).
  EventProxy(net::Host& host, sim::Simulator* sim, EventBase& event,
             const ProxyOptions& opts);
  ~EventProxy();
  EventProxy(const EventProxy&) = delete;
  EventProxy& operator=(const EventProxy&) = delete;

  // Hands queued fire-and-forget datagrams to the network. Call from the
  // simulation thread (typically after ThreadPool::Drain()); returns the
  // number of datagrams transmitted.
  size_t Flush();

  bool dead() const { return dead_; }
  uint64_t raises() const { return raises_; }
  uint64_t retries() const { return retries_; }
  uint64_t timeouts() const { return timeouts_; }
  uint64_t dead_raises() const { return dead_raises_; }

  // Distribution of sync roundtrips in virtual (simulated) nanoseconds.
  const obs::Histogram& roundtrip_hist() const { return roundtrip_; }

  const BindingHandle& binding() const { return binding_; }

 private:
  static uint64_t Invoke(void* fn, void* closure, uint64_t* slots);

  uint64_t RaiseSync(uint64_t* slots);
  void EnqueueAsync(const uint64_t* slots);
  void OnDatagram(const net::Packet& packet);
  static void ExportMetricsSource(void* ctx, std::ostream& os);

  net::Host& host_;
  sim::Simulator* sim_;
  EventBase& event_;
  ProxyOptions opts_;
  MarshalPlan plan_;
  Module module_;
  std::unique_ptr<net::UdpSocket> socket_;
  BindingHandle binding_;
  const char* obs_name_;  // interned event name for trace records

  uint64_t next_id_ = 1;
  std::map<uint64_t, ReplyMsg> inbox_;  // replies awaiting their raiser
  bool dead_ = false;

  std::mutex outbox_mu_;  // async marshals run on pool threads
  std::deque<std::string> outbox_;

  uint64_t raises_ = 0;
  uint64_t retries_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t dead_raises_ = 0;
  obs::Histogram roundtrip_;
};

}  // namespace remote
}  // namespace spin

#endif  // SRC_REMOTE_PROXY_H_
