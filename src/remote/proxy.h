// Event proxies: the client half of remote event dispatch.
//
// An EventProxy installs an ordinary (type-erased) binding on a local
// event, so a plain local `Raise` transparently becomes a remote one: the
// proxy marshals the argument slots per the event's TypeSig, ships them to
// an Exporter on another host, and — for synchronous raises — blocks the
// raiser until the reply carries back the result, the final VAR values, or
// the remote exception.
//
// Before any of that, the proxy binds (§2.5 across the wire): the
// constructor performs a BindRequest/BindReply handshake carrying the
// proxy's module identity and a credential blob (per-proxy override or the
// host's default). The exporter runs the event's authorizer; a denial
// throws RemoteError(kDenied) and installs nothing. A grant returns a
// capability token — stamped on every subsequent raise — plus any
// authorizer-imposed guards, serialized as micro-programs. The proxy
// installs those on its local binding (ImposeMicroGuard), so a raise the
// imposed guard rejects is skipped locally, before marshaling: the same
// observable behavior as a guarded local binding, minus the roundtrip.
// The exporter re-evaluates the guards anyway — proxy-side evaluation is
// an optimization, exporter-side evaluation is the trust boundary.
//
// "Blocks" on a discrete-event simulator means the proxy pumps the
// simulator from inside the raise: it schedules a sentinel no-op at the
// attempt deadline and runs simulator events one at a time until either
// the reply datagram is delivered or virtual time reaches the deadline.
// Each timed-out attempt retransmits the SAME request id with a doubled
// timeout (capped at max_backoff_ns) — the exporter's at-most-once window
// guarantees the event body never runs twice even when an earlier attempt
// was merely delayed, not lost. When the retry budget is exhausted the
// raise throws RemoteError(kTimeout); it never hangs. The bind handshake
// retries on the same schedule.
//
// Asynchronous proxies (RaiseKind::kAsync) are fire-and-forget: the
// binding is installed async, so the marshal runs on the dispatcher's
// thread pool, which enqueues the encoded datagram into an outbox. The
// simulation thread hands outbox entries to the network with Flush() —
// the simulator itself is single-threaded, so pool threads must not touch
// it. Async proxies reject result-returning and VAR signatures at install
// (§2.6's rule, extended across the wire).
//
// Death and revocation: a reply of kUnbound or kNoSuchEvent marks the
// proxy dead (the remote binding is gone; subsequent raises fail fast with
// RemoteError(kDead), no traffic). A kRevoked reply, or a pushed Revoke
// notice matching the proxy's token, marks it revoked: subsequent raises
// fail fast with RemoteError(kRevoked), and Flush() drops queued async
// datagrams instead of transmitting them.
#ifndef SRC_REMOTE_PROXY_H_
#define SRC_REMOTE_PROXY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/core/dispatcher.h"
#include "src/net/host.h"
#include "src/obs/obs.h"
#include "src/obs/watchdog.h"
#include "src/remote/marshal.h"
#include "src/remote/wire_format.h"
#include "src/sim/simulator.h"

namespace spin {
namespace remote {

struct ProxyOptions {
  uint32_t remote_ip = 0;                    // the exporter's host
  uint16_t remote_port = kDefaultRemotePort;
  uint16_t local_port = 7008;                // this proxy's reply socket
  RaiseKind kind = RaiseKind::kSync;
  uint32_t max_attempts = 5;                 // first send + retries
  uint64_t timeout_ns = 2'000'000;           // first attempt's deadline
  uint64_t max_backoff_ns = 32'000'000;      // timeout doubling cap

  // Placement of the proxy binding among the event's handlers (§2.3
  // "Ordering handlers"). The proxy is an ordinary binding in the event's
  // combined order list, so First/Last/Before/After hold across local
  // handlers and the proxy alike.
  Order order{};

  // Identity presented in the bind handshake. Empty module_name defaults
  // to "Remote.Proxy.<event>"; empty credential defaults to the host's
  // (Host::SetCredential).
  std::string module_name;
  std::string credential;

  // Compile verifier-admitted imposed guards to native stubs at install
  // (the verify-then-JIT path). False keeps them interpreted — the nojit
  // fallback and the differential/bench baseline.
  bool jit_guards = true;
};

class EventProxy {
 public:
  // Performs the bind handshake, then installs the proxy binding. Throws
  // RemoteError(kUnmarshalable) when the event's signature cannot cross
  // the wire (or, for kAsync, returns a result / takes VAR parameters);
  // RemoteError(kDenied) when the exporter's authorizer refuses the bind;
  // RemoteError(kTimeout) when the handshake exhausts its retry budget.
  // A throwing constructor installs nothing.
  EventProxy(net::Host& host, sim::Simulator* sim, EventBase& event,
             const ProxyOptions& opts);
  ~EventProxy();
  EventProxy(const EventProxy&) = delete;
  EventProxy& operator=(const EventProxy&) = delete;

  // Hands queued fire-and-forget datagrams to the network. Call from the
  // simulation thread (typically after ThreadPool::Drain()); returns the
  // number of datagrams transmitted (0 when dead or revoked — queued
  // datagrams are dropped, matching the fail-fast sync path).
  size_t Flush();

  bool dead() const { return dead_; }
  bool revoked() const { return revoked_; }
  uint64_t token() const { return token_; }
  uint64_t raises() const { return raises_; }
  uint64_t retries() const { return retries_; }
  uint64_t timeouts() const { return timeouts_; }
  uint64_t dead_raises() const { return dead_raises_; }
  uint64_t revoke_notices() const { return revoke_notices_; }

  // Distribution of sync roundtrips in virtual (simulated) nanoseconds.
  const obs::Histogram& roundtrip_hist() const { return roundtrip_; }

  const BindingHandle& binding() const { return binding_; }

 private:
  static uint64_t Invoke(void* fn, void* closure, uint64_t* slots);

  // Constructor-time BindRequest/BindReply exchange. Sets token_ and
  // returns the guards the authorizer imposed; throws on denial/timeout.
  std::vector<micro::Program> BindHandshake();

  // Sends `encoded` and pumps the simulator until arrived() or the retry
  // budget runs out (returns false). Shared by the handshake and sync
  // raises; retransmissions count into retries_.
  bool TransmitAwait(const std::string& encoded, uint64_t trace_arg,
                     const std::function<bool()>& arrived);

  uint64_t RaiseSync(uint64_t* slots);
  void EnqueueAsync(const uint64_t* slots);
  void OnDatagram(const net::Packet& packet);
  static void ExportMetricsSource(void* ctx, std::ostream& os);

  // Anomaly-watchdog probe: reports the retry counter (the watchdog's rate
  // rule flags a retry storm) and the async outbox backlog each period.
  static void WatchdogProbeSource(void* ctx,
                                  std::vector<obs::WatchSample>& out);

  net::Host& host_;
  sim::Simulator* sim_;
  EventBase& event_;
  ProxyOptions opts_;
  MarshalPlan plan_;
  Module module_;
  std::unique_ptr<net::UdpSocket> socket_;
  BindingHandle binding_;
  const char* obs_name_;  // interned event name for trace records
  const char* watch_name_;  // interned "proxy/<event>" for watchdog samples

  uint64_t next_id_ = 1;  // re-seeded from virtual time at construction
  uint64_t token_ = 0;  // capability granted by the bind handshake
  std::map<uint64_t, ReplyMsg> inbox_;      // replies awaiting their raiser
  std::map<uint64_t, BindReplyMsg> bind_inbox_;
  bool dead_ = false;
  bool revoked_ = false;

  // Async marshals run on pool threads. Each entry remembers the wire span
  // its request was encoded under so Flush() can emit the kRemoteSend flow
  // start against the right span from the simulation thread.
  struct OutboxEntry {
    std::string encoded;
    uint64_t span = 0;
  };
  std::mutex outbox_mu_;
  std::deque<OutboxEntry> outbox_;
  // Entries Flush() has drained from the outbox (sent, or dropped on a
  // dead proxy) — the drain-progress counter for the watchdog's queue
  // stall rule. Guarded by outbox_mu_.
  uint64_t flushed_ = 0;

  // Counters are mutated on raiser/pool threads and read by the watchdog
  // monitor thread and metrics export; atomic so those reads are not a
  // data race. They are independent statistics — ordering is irrelevant.
  std::atomic<uint64_t> raises_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> dead_raises_{0};
  std::atomic<uint64_t> revoke_notices_{0};
  obs::Histogram roundtrip_;
};

}  // namespace remote
}  // namespace spin

#endif  // SRC_REMOTE_PROXY_H_
