#include "src/remote/exporter.h"

#include <exception>
#include <optional>
#include <ostream>
#include <utility>

#include "src/codegen/frame.h"
#include "src/core/dispatch_state.h"
#include "src/core/dispatcher.h"
#include "src/core/shard.h"
#include "src/obs/context.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"

namespace spin {
namespace remote {

Exporter::Exporter(net::Host& host, uint16_t port)
    : host_(host),
      port_(port),
      // Deterministic per (host, port): chaos tests replay token streams.
      token_rng_(0x53504541ull ^ (static_cast<uint64_t>(host.ip()) << 16) ^
                 port) {
  socket_ = std::make_unique<net::UdpSocket>(
      host_, port_,
      [this](const net::Packet& packet) { OnDatagram(packet); });
  obs::RegisterSource(this, &Exporter::ExportMetricsSource);
}

Exporter::~Exporter() { obs::UnregisterSource(this); }

void Exporter::Export(EventBase& event) {
  MarshalPlan plan = PlanFor(event.sig(), event.name());
  exports_[event.name()] = Entry{&event, std::move(plan)};
  withdrawn_.erase(event.name());
}

void Exporter::Unexport(EventBase& event) {
  if (exports_.erase(event.name()) != 0) {
    withdrawn_.insert(event.name());
  }
  // The export is gone; every capability minted against it dies with it.
  for (auto it = bound_.begin(); it != bound_.end();) {
    if (it->second.event_name == event.name()) {
      RevokeClient(it->first, it->second);
      it = bound_.erase(it);
    } else {
      ++it;
    }
  }
}

bool Exporter::Revoke(uint64_t token) {
  auto it = bound_.find(token);
  if (it == bound_.end()) {
    return false;
  }
  RevokeClient(token, it->second);
  bound_.erase(it);
  return true;
}

void Exporter::RevokeClient(uint64_t token, const BoundClient& client) {
  ++revoked_tokens_;
  obs::FlightRecorder::Global().Emit(obs::TraceKind::kRemoteRevoke,
                                     obs::Intern(client.event_name), token);
  RevokeMsg notice;
  notice.token = token;
  notice.event_name = client.event_name;
  socket_->SendTo(client.ip, client.port, EncodeRevoke(notice));
}

uint64_t Exporter::MintToken() {
  uint64_t token;
  do {
    // splitmix64: uniform 64-bit stream, pure function of the seed.
    token_rng_ += 0x9e3779b97f4a7c15ull;
    uint64_t z = token_rng_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    token = z ^ (z >> 31);
  } while (token == 0 || bound_.count(token) != 0);
  return token;
}

void Exporter::OnDatagram(const net::Packet& packet) {
  std::string payload = packet.UdpPayload();
  MsgType type;
  if (!PeekType(payload, &type) ||
      (type != MsgType::kRequest && type != MsgType::kBindRequest)) {
    ++bad_requests_;
    return;  // not ours, or torn; nothing sane to reply to
  }

  auto replay_cached = [this](const DedupKey& key) -> const std::string* {
    auto it = replay_.find(key);
    return it != replay_.end() ? &it->second : nullptr;
  };
  auto cache_reply = [this](const DedupKey& key, std::string encoded) {
    replay_.emplace(key, std::move(encoded));
    replay_fifo_.push_back(key);
    while (replay_fifo_.size() > kDedupWindow) {
      replay_.erase(replay_fifo_.front());
      replay_fifo_.pop_front();
    }
  };

  if (type == MsgType::kBindRequest) {
    BindRequestMsg request;
    if (!DecodeBindRequest(payload, &request)) {
      ++bad_requests_;
      return;
    }
    DedupKey key{packet.ip_src(), packet.src_port(),
                 static_cast<uint8_t>(MsgType::kBindRequest), 0,
                 request.bind_id};
    if (const std::string* cached = replay_cached(key)) {
      // A retransmitted bind replays the original grant: at-most-once
      // token minting, same as at-most-once dispatch.
      ++dedup_hits_;
      obs::FlightRecorder::Global().Emit(obs::TraceKind::kRemoteDedup,
                                         obs::Intern(request.event_name),
                                         request.bind_id);
      socket_->SendTo(packet.ip_src(), packet.src_port(), *cached);
      return;
    }
    BindReplyMsg reply =
        Bind(request, packet.ip_src(), packet.src_port());
    std::string encoded = EncodeBindReply(reply);
    cache_reply(key, encoded);
    socket_->SendTo(packet.ip_src(), packet.src_port(), encoded);
    return;
  }

  RequestMsg request;
  if (!DecodeRequest(payload, &request)) {
    ++bad_requests_;
    return;
  }
  ++requests_;

  // Join the raiser's span: while this request is deduped or dispatched —
  // including every raise the dispatch triggers — records carry the wire
  // span from the request trailer, so the exporter side of the roundtrip
  // lands in the originating span tree. Adoption does not complete the
  // span; it belongs to the raiser. The trailer doubles as the sampled
  // bit: its presence means the raiser captured its side of the tree, so
  // adopt with an explicit kTrace. Its absence under sampled mode means
  // the raiser sampled the tree out — pin kSkip so this host's half emits
  // nothing either and a sampled capture never holds half a roundtrip.
  // Under full mode a trailer-less request (an old-format client) keeps
  // today's behavior: the dispatch opens its own fresh root.
  std::optional<obs::SpanScope> span_scope;
  std::optional<obs::SampleScope> sample_scope;
  if (obs::Enabled() && request.span_id != 0) {
    span_scope.emplace(
        obs::TraceContext{request.span_id, 0, host_.trace_host_id(),
                          obs::SampleDecision::kTrace},
        /*complete_on_exit=*/false);
  } else if (obs::GetTraceConfig().mode == obs::TraceMode::kSampled) {
    sample_scope.emplace(obs::SampleDecision::kSkip);
  }

  DedupKey key{packet.ip_src(), packet.src_port(),
               static_cast<uint8_t>(MsgType::kRequest), request.token,
               request.request_id};
  if (const std::string* cached = replay_cached(key)) {
    ++dedup_hits_;
    obs::FlightRecorder::Global().Emit(obs::TraceKind::kRemoteDedup,
                                       obs::Intern(request.event_name),
                                       request.request_id);
    if (request.kind == RaiseKind::kSync) {
      socket_->SendTo(packet.ip_src(), packet.src_port(), *cached);
    }
    return;  // at-most-once: the event does not raise again
  }

  if (span_scope) {
    obs::FlightRecorder::Global().Emit(obs::TraceKind::kRemoteDispatch,
                                       obs::Intern(request.event_name),
                                       request.request_id);
    if (request.origin_host != host_.trace_host_id()) {
      obs::CountCrossHostSpan();
    }
  }
  std::string encoded;
  {
    // Exporter-side dispatch phase: frame materialization, guard
    // enforcement, the local raise, and the reply encode. Nested under the
    // proxy's kWire scope when the sim pump runs this inline on the raising
    // thread, so wire self-time excludes it.
    obs::PhaseScope dispatch_phase(obs::Phase::kDispatch,
                                   obs::Intern(request.event_name),
                                   span_scope.has_value());
    ReplyMsg reply = Dispatch(request);
    encoded = EncodeReply(reply);
  }
  cache_reply(key, std::move(encoded));
  if (request.kind == RaiseKind::kSync) {
    socket_->SendTo(packet.ip_src(), packet.src_port(),
                    replay_.find(key)->second);
  }
}

BindReplyMsg Exporter::Bind(const BindRequestMsg& request,
                            uint32_t source_ip, uint16_t source_port) {
  BindReplyMsg reply;
  reply.bind_id = request.bind_id;

  auto it = exports_.find(request.event_name);
  if (it == exports_.end()) {
    if (withdrawn_.count(request.event_name) != 0) {
      ++unbound_;
      reply.status = WireStatus::kUnbound;
    } else {
      reply.status = WireStatus::kNoSuchEvent;
    }
    return reply;
  }
  const Entry& entry = it->second;
  if (request.params != entry.plan.params) {
    ++bad_requests_;
    reply.status = WireStatus::kBadRequest;
    reply.error = "signature mismatch for " + request.event_name;
    return reply;
  }

  auto deny = [&](const std::string& why) {
    ++auth_denied_;
    obs::FlightRecorder::Global().Emit(obs::TraceKind::kRemoteBind,
                                       obs::Intern(request.event_name), 0);
    reply.status = WireStatus::kDenied;
    reply.error = why;
    reply.guards.clear();
    return reply;
  };

  // The candidate binding the authorizer sees. It is never installed in a
  // dispatcher — it exists so AuthRequest::ImposeGuard has its usual
  // target and so raise-time enforcement has a guard list to evaluate.
  BoundClient client;
  client.event_name = request.event_name;
  client.ip = source_ip;
  client.port = source_port;
  client.module = std::make_unique<Module>(request.module_name);
  client.binding = std::make_shared<Binding>();
  client.binding->event = entry.event;
  client.binding->owner = client.module.get();
  client.binding->erased = true;
  client.binding->sig = entry.event->sig();

  RemoteBindInfo info;
  info.source_ip = source_ip;
  info.source_port = source_port;
  info.module_name = request.module_name;
  info.credential = request.credential;

  AuthRequest auth;
  auth.op = AuthOp::kInstall;
  auth.event = entry.event;
  auth.binding = client.binding.get();
  auth.requestor = client.module.get();
  auth.credentials = &info;
  if (!entry.event->owner().Authorize(auth)) {
    return deny("bind denied by authorizer for " + request.event_name);
  }

  // Serialize the imposed guards for proxy-side evaluation. A guard that
  // cannot cross the wire fails the bind closed: granting without it would
  // silently weaken what the authorizer demanded.
  const std::vector<GuardClause>& guards = client.binding->guards();
  if (guards.size() > kMaxWireGuards) {
    return deny("too many imposed guards for " + request.event_name);
  }
  for (const GuardClause& guard : guards) {
    if (!guard.prog.has_value() || guard.closure_form ||
        guard.prog->num_args() !=
            static_cast<int>(entry.plan.params.size())) {
      return deny("imposed guard is not wireable for " + request.event_name);
    }
    // Run the same admission pass the peer's decoder will: a program this
    // verifier refuses would be refused on arrival anyway, so fail the
    // bind here with the precise refusal instead of shipping it.
    micro::VerifyResult v =
        micro::Verify(*guard.prog, micro::WireGuardLimits());
    if (!guard.prog->functional() || !v.ok()) {
      return deny("imposed guard is not wireable for " + request.event_name +
                  (v.ok() ? std::string(" (not FUNCTIONAL)")
                          : std::string(" (") +
                                micro::VerifyStatusName(v.status) + ")"));
    }
    reply.guards.push_back(*guard.prog);
  }

  uint64_t token = MintToken();
  ++binds_;
  obs::FlightRecorder::Global().Emit(obs::TraceKind::kRemoteBind,
                                     obs::Intern(request.event_name), token);
  bound_.emplace(token, std::move(client));
  reply.status = WireStatus::kOk;
  reply.token = token;
  return reply;
}

ReplyMsg Exporter::Dispatch(const RequestMsg& request) {
  ReplyMsg reply;
  reply.request_id = request.request_id;

  // Capability first: a withdrawn or revoked binding fails fast with
  // kRevoked no matter what else the request claims.
  auto bit = bound_.find(request.token);
  if (bit == bound_.end() ||
      bit->second.event_name != request.event_name) {
    ++revoked_raises_;
    reply.status = WireStatus::kRevoked;
    reply.error = "stale or unknown capability for " + request.event_name;
    return reply;
  }
  const BoundClient& client = bit->second;

  auto it = exports_.find(request.event_name);
  if (it == exports_.end()) {
    // Defensive: Unexport revokes its tokens, so a live token implies a
    // live export; raw-wire traffic can still get here.
    if (withdrawn_.count(request.event_name) != 0) {
      ++unbound_;
      reply.status = WireStatus::kUnbound;
    } else {
      reply.status = WireStatus::kNoSuchEvent;
    }
    return reply;
  }
  const Entry& entry = it->second;
  if (request.params != entry.plan.params ||
      request.args.size() != entry.plan.params.size()) {
    ++bad_requests_;
    reply.status = WireStatus::kBadRequest;
    reply.error = "signature mismatch for " + request.event_name;
    return reply;
  }

  // Materialize the frame. VAR parameters point into local copy-in/out
  // storage; the exporter's handlers mutate that storage, and the final
  // values travel back in the reply.
  RaiseFrame frame;
  uint64_t var_storage[kMaxEventArgs] = {};
  for (size_t i = 0; i < entry.plan.params.size(); ++i) {
    const WireParam& p = entry.plan.params[i];
    if (p.by_ref) {
      StoreScalar(static_cast<TypeClass>(p.cls), &var_storage[i],
                  request.args[i]);
      frame.args[i] = reinterpret_cast<uintptr_t>(&var_storage[i]);
    } else {
      frame.args[i] = request.args[i];
    }
  }

  // Enforce the bind's imposed guards. The proxy evaluates the same
  // programs before marshaling (saving this roundtrip on rejection), but
  // the exporter is the trust boundary — raw-wire callers do not get to
  // skip what the authorizer imposed.
  if (!EvalGuards(*client.binding, frame.args)) {
    ++guard_rejected_;
    reply.status = WireStatus::kGuardRejected;
    reply.error = "imposed guard rejected raise of " + request.event_name;
    return reply;
  }

  try {
    // Inbound dispatch is identified by the connection it arrived on: the
    // capability token pins every raise from one remote binding (and
    // whatever its handlers raise in turn) to one dispatcher shard.
    RaiseSourceScope source(
        MakeRaiseSource(SourceKind::kConnection, request.token));
    entry.event->RaiseErased(frame);
  } catch (const std::exception& e) {
    ++exceptions_;
    reply.status = WireStatus::kException;
    reply.error = e.what();
    return reply;
  }

  reply.status = WireStatus::kOk;
  if (entry.plan.has_result()) {
    reply.result = frame.result;
  }
  for (size_t i = 0; i < entry.plan.params.size(); ++i) {
    const WireParam& p = entry.plan.params[i];
    if (p.by_ref) {
      reply.byref.push_back(
          LoadScalar(static_cast<TypeClass>(p.cls), &var_storage[i]));
    }
  }
  return reply;
}

void Exporter::ExportMetricsSource(void* ctx, std::ostream& os) {
  auto* self = static_cast<Exporter*>(ctx);
  auto line = [&os, self](const char* name, uint64_t value) {
    os << name << "{host=\"";
    obs::WriteLabelValue(os, self->host_.host_name());
    os << "\"} " << value << "\n";
  };
  line("spin_remote_server_requests_total", self->requests_);
  line("spin_remote_server_dedup_hits_total", self->dedup_hits_);
  line("spin_remote_server_exceptions_total", self->exceptions_);
  line("spin_remote_server_bad_requests_total", self->bad_requests_);
  line("spin_remote_server_unbound_total", self->unbound_);
  line("spin_remote_server_binds_total", self->binds_);
  line("spin_remote_server_auth_denied_total", self->auth_denied_);
  line("spin_remote_server_revoked_tokens_total", self->revoked_tokens_);
  line("spin_remote_server_revoked_raises_total", self->revoked_raises_);
  line("spin_remote_server_guard_rejected_total", self->guard_rejected_);
}

}  // namespace remote
}  // namespace spin
