#include "src/remote/exporter.h"

#include <exception>
#include <ostream>

#include "src/codegen/frame.h"
#include "src/core/dispatcher.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"

namespace spin {
namespace remote {

Exporter::Exporter(net::Host& host, uint16_t port)
    : host_(host), port_(port) {
  socket_ = std::make_unique<net::UdpSocket>(
      host_, port_,
      [this](const net::Packet& packet) { OnDatagram(packet); });
  obs::RegisterSource(this, &Exporter::ExportMetricsSource);
}

Exporter::~Exporter() { obs::UnregisterSource(this); }

void Exporter::Export(EventBase& event) {
  MarshalPlan plan = PlanFor(event.sig(), event.name());
  exports_[event.name()] = Entry{&event, std::move(plan)};
  withdrawn_.erase(event.name());
}

void Exporter::Unexport(EventBase& event) {
  if (exports_.erase(event.name()) != 0) {
    withdrawn_.insert(event.name());
  }
}

void Exporter::OnDatagram(const net::Packet& packet) {
  std::string payload = packet.UdpPayload();
  RequestMsg request;
  if (!DecodeRequest(payload, &request)) {
    ++bad_requests_;
    return;  // not ours, or torn; nothing sane to reply to
  }
  ++requests_;

  DedupKey key{packet.ip_src(), packet.src_port(), request.request_id};
  if (auto it = replay_.find(key); it != replay_.end()) {
    ++dedup_hits_;
    obs::FlightRecorder::Global().Emit(obs::TraceKind::kRemoteDedup,
                                       obs::Intern(request.event_name),
                                       request.request_id);
    if (request.kind == RaiseKind::kSync) {
      socket_->SendTo(packet.ip_src(), packet.src_port(), it->second);
    }
    return;  // at-most-once: the event does not raise again
  }

  ReplyMsg reply = Dispatch(request);
  std::string encoded = EncodeReply(reply);
  replay_.emplace(key, encoded);
  replay_fifo_.push_back(key);
  while (replay_fifo_.size() > kDedupWindow) {
    replay_.erase(replay_fifo_.front());
    replay_fifo_.pop_front();
  }
  if (request.kind == RaiseKind::kSync) {
    socket_->SendTo(packet.ip_src(), packet.src_port(), encoded);
  }
}

ReplyMsg Exporter::Dispatch(const RequestMsg& request) {
  ReplyMsg reply;
  reply.request_id = request.request_id;

  auto it = exports_.find(request.event_name);
  if (it == exports_.end()) {
    if (withdrawn_.count(request.event_name) != 0) {
      ++unbound_;
      reply.status = WireStatus::kUnbound;
    } else {
      reply.status = WireStatus::kNoSuchEvent;
    }
    return reply;
  }
  const Entry& entry = it->second;
  if (request.params != entry.plan.params ||
      request.args.size() != entry.plan.params.size()) {
    ++bad_requests_;
    reply.status = WireStatus::kBadRequest;
    reply.error = "signature mismatch for " + request.event_name;
    return reply;
  }

  // Materialize the frame. VAR parameters point into local copy-in/out
  // storage; the exporter's handlers mutate that storage, and the final
  // values travel back in the reply.
  RaiseFrame frame;
  uint64_t var_storage[kMaxEventArgs] = {};
  for (size_t i = 0; i < entry.plan.params.size(); ++i) {
    const WireParam& p = entry.plan.params[i];
    if (p.by_ref) {
      StoreScalar(static_cast<TypeClass>(p.cls), &var_storage[i],
                  request.args[i]);
      frame.args[i] = reinterpret_cast<uintptr_t>(&var_storage[i]);
    } else {
      frame.args[i] = request.args[i];
    }
  }

  try {
    entry.event->RaiseErased(frame);
  } catch (const std::exception& e) {
    ++exceptions_;
    reply.status = WireStatus::kException;
    reply.error = e.what();
    return reply;
  }

  reply.status = WireStatus::kOk;
  if (entry.plan.has_result()) {
    reply.result = frame.result;
  }
  for (size_t i = 0; i < entry.plan.params.size(); ++i) {
    const WireParam& p = entry.plan.params[i];
    if (p.by_ref) {
      reply.byref.push_back(
          LoadScalar(static_cast<TypeClass>(p.cls), &var_storage[i]));
    }
  }
  return reply;
}

void Exporter::ExportMetricsSource(void* ctx, std::ostream& os) {
  auto* self = static_cast<Exporter*>(ctx);
  auto line = [&os, self](const char* name, uint64_t value) {
    os << name << "{host=\"";
    obs::WriteLabelValue(os, self->host_.host_name());
    os << "\"} " << value << "\n";
  };
  line("spin_remote_server_requests_total", self->requests_);
  line("spin_remote_server_dedup_hits_total", self->dedup_hits_);
  line("spin_remote_server_exceptions_total", self->exceptions_);
  line("spin_remote_server_bad_requests_total", self->bad_requests_);
  line("spin_remote_server_unbound_total", self->unbound_);
}

}  // namespace remote
}  // namespace spin
