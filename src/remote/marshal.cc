#include "src/remote/marshal.h"

#include <bit>
#include <cstring>

#include "src/core/errors.h"
#include "src/rt/panic.h"
#include "src/types/type_registry.h"

namespace spin {
namespace remote {
namespace {

bool IsScalar(TypeClass cls) {
  switch (cls) {
    case TypeClass::kBool:
    case TypeClass::kInt32:
    case TypeClass::kUInt32:
    case TypeClass::kInt64:
    case TypeClass::kUInt64:
    case TypeClass::kFloat64:
      return true;
    case TypeClass::kVoid:
    case TypeClass::kPointer:
      return false;
  }
  return false;
}

// Resolves a VAR parameter's pointee TypeId to the scalar class that
// describes its memory, or kVoid when the pointee is not a wire scalar.
TypeClass PointeeClass(TypeId ref_type) {
  if (ref_type == TypeOf<bool>()) {
    return TypeClass::kBool;
  }
  if (ref_type == TypeOf<int32_t>()) {
    return TypeClass::kInt32;
  }
  if (ref_type == TypeOf<uint32_t>()) {
    return TypeClass::kUInt32;
  }
  if (ref_type == TypeOf<int64_t>()) {
    return TypeClass::kInt64;
  }
  if (ref_type == TypeOf<uint64_t>()) {
    return TypeClass::kUInt64;
  }
  if (ref_type == TypeOf<double>()) {
    return TypeClass::kFloat64;
  }
  return TypeClass::kVoid;
}

[[noreturn]] void Unmarshalable(const std::string& what, size_t index,
                                const char* why) {
  throw RemoteError(RemoteStatus::kUnmarshalable,
                    what + ", parameter " + std::to_string(index) + ": " +
                        why);
}

}  // namespace

MarshalPlan PlanFor(const ProcSig& sig, const std::string& what) {
  MarshalPlan plan;
  plan.params.reserve(sig.params.size());
  for (size_t i = 0; i < sig.params.size(); ++i) {
    const ParamSig& p = sig.params[i];
    if (p.by_ref) {
      TypeClass pointee = PointeeClass(p.ref_type);
      if (pointee == TypeClass::kVoid) {
        Unmarshalable(what, i,
                      "VAR parameter does not reference a wire scalar");
      }
      plan.params.push_back(
          WireParam{static_cast<uint8_t>(pointee), /*by_ref=*/true});
      ++plan.num_byref;
    } else if (p.cls == TypeClass::kPointer) {
      Unmarshalable(what, i, "pointers do not cross an address space");
    } else if (!IsScalar(p.cls)) {
      Unmarshalable(what, i, "not a wire scalar");
    } else {
      plan.params.push_back(
          WireParam{static_cast<uint8_t>(p.cls), /*by_ref=*/false});
    }
  }
  if (sig.result.cls == TypeClass::kPointer) {
    throw RemoteError(RemoteStatus::kUnmarshalable,
                      what + ": pointer results do not cross the wire");
  }
  plan.result_cls = sig.result.cls;
  return plan;
}

uint64_t LoadScalar(TypeClass cls, const void* p) {
  switch (cls) {
    case TypeClass::kBool: {
      bool v;
      std::memcpy(&v, p, sizeof(v));
      return v ? 1 : 0;
    }
    case TypeClass::kInt32: {
      int32_t v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<uint64_t>(static_cast<int64_t>(v));
    }
    case TypeClass::kUInt32: {
      uint32_t v;
      std::memcpy(&v, p, sizeof(v));
      return v;
    }
    case TypeClass::kInt64:
    case TypeClass::kUInt64: {
      uint64_t v;
      std::memcpy(&v, p, sizeof(v));
      return v;
    }
    case TypeClass::kFloat64: {
      double v;
      std::memcpy(&v, p, sizeof(v));
      return std::bit_cast<uint64_t>(v);
    }
    case TypeClass::kVoid:
    case TypeClass::kPointer:
      break;
  }
  SPIN_PANIC("LoadScalar on non-scalar class");
}

void StoreScalar(TypeClass cls, void* p, uint64_t v) {
  switch (cls) {
    case TypeClass::kBool: {
      bool b = v != 0;
      std::memcpy(p, &b, sizeof(b));
      return;
    }
    case TypeClass::kInt32:
    case TypeClass::kUInt32: {
      uint32_t w = static_cast<uint32_t>(v);
      std::memcpy(p, &w, sizeof(w));
      return;
    }
    case TypeClass::kInt64:
    case TypeClass::kUInt64: {
      std::memcpy(p, &v, sizeof(v));
      return;
    }
    case TypeClass::kFloat64: {
      double d = std::bit_cast<double>(v);
      std::memcpy(p, &d, sizeof(d));
      return;
    }
    case TypeClass::kVoid:
    case TypeClass::kPointer:
      break;
  }
  SPIN_PANIC("StoreScalar on non-scalar class");
}

}  // namespace remote
}  // namespace spin
