// Peephole optimizer over LIR (§3: "we use peephole optimizations to
// improve the quality of the generated code").
//
// Rewrites performed:
//   1. cmp r, 0          -> test r, r         (shorter encoding)
//   2. jmp L; ... L:     -> (dropped)         when L immediately follows
//   3. mov r, r          -> (dropped)
//   4. redundant reloads -> (dropped)         a load of [base+disp] into a
//      register that provably already holds that value. Facts are killed on
//      register writes, any store (conservative aliasing), calls, and labels
//      (control-flow merge points).
#ifndef SRC_CODEGEN_PEEPHOLE_H_
#define SRC_CODEGEN_PEEPHOLE_H_

#include <cstddef>
#include <vector>

#include "src/codegen/lir.h"

namespace spin {
namespace codegen {

// Optimizes `code` in place; returns the number of rewrites applied.
size_t Peephole(std::vector<LInsn>& code);

}  // namespace codegen
}  // namespace spin

#endif  // SRC_CODEGEN_PEEPHOLE_H_
