#include "src/codegen/peephole.h"

#include <optional>
#include <unordered_map>

namespace spin {
namespace codegen {
namespace {

// Whether the instruction writes its dst register.
bool WritesDst(const LInsn& insn) {
  switch (insn.op) {
    case LOp::kMovRegImm:
    case LOp::kMovRegReg:
    case LOp::kLoadRegMem:
    case LOp::kLea:
    case LOp::kAdd:
    case LOp::kSub:
    case LOp::kAnd:
    case LOp::kOr:
    case LOp::kXor:
    case LOp::kShlImm:
    case LOp::kShrImm:
    case LOp::kSetcc:
    case LOp::kMovzx8:
    case LOp::kPop:
      return true;
    default:
      return false;
  }
}

struct LoadFact {
  Reg base;
  int32_t disp;
  uint8_t width;

  friend bool operator==(const LoadFact&, const LoadFact&) = default;
};

// Per-register "reg currently holds the value of [base+disp]" facts.
// Generated stubs only branch forward, so a single in-order pass sees every
// jump to a label before the label binds; facts at a label are the
// intersection (meet) of the facts on each incoming edge.
class FactTable {
 public:
  void KillAll() {
    for (auto& f : facts_) {
      f.reset();
    }
  }

  void KillReg(Reg reg) {
    facts_[Idx(reg)].reset();
    for (auto& f : facts_) {
      if (f && f->base == reg) {
        f.reset();
      }
    }
  }

  // A store of `width` bytes at [base+disp] happened. Facts loaded from the
  // same base register at a provably disjoint range survive (the dispatch
  // stub's bookkeeping stores at fired/result offsets must not invalidate
  // argument-slot facts); everything else dies.
  void KillStore(Reg base, int32_t disp, uint8_t width) {
    for (auto& f : facts_) {
      if (!f) {
        continue;
      }
      bool disjoint = f->base == base &&
                      (f->disp + f->width <= disp ||
                       disp + width <= f->disp);
      if (!disjoint) {
        f.reset();
      }
    }
  }

  bool Holds(Reg reg, Reg base, int32_t disp, uint8_t width) const {
    const auto& f = facts_[Idx(reg)];
    return f && *f == LoadFact{base, disp, width};
  }

  void Record(Reg reg, Reg base, int32_t disp, uint8_t width) {
    if (reg == base) {
      facts_[Idx(reg)].reset();
      return;
    }
    facts_[Idx(reg)] = LoadFact{base, disp, width};
  }

  void IntersectWith(const FactTable& other) {
    for (size_t i = 0; i < 16; ++i) {
      if (facts_[i] && (!other.facts_[i] || !(*facts_[i] == *other.facts_[i]))) {
        facts_[i].reset();
      }
    }
  }

 private:
  static size_t Idx(Reg reg) { return static_cast<size_t>(reg); }
  std::optional<LoadFact> facts_[16];
};

size_t OnePass(std::vector<LInsn>& code) {
  size_t rewrites = 0;
  std::vector<LInsn> out;
  out.reserve(code.size());
  FactTable facts;
  // Meet of facts over branches into each (forward) label, recorded as the
  // branches are seen. This is only sound when every branch is forward (as
  // the stub compiler guarantees); with any backward branch we degrade to
  // killing all facts at labels.
  bool backward_branches = false;
  {
    std::unordered_map<int, size_t> bound_at;
    for (size_t i = 0; i < code.size(); ++i) {
      if (code[i].op == LOp::kBind) {
        bound_at[code[i].label] = i;
      }
    }
    for (size_t i = 0; i < code.size() && !backward_branches; ++i) {
      if (code[i].op == LOp::kJcc || code[i].op == LOp::kJmp) {
        auto it = bound_at.find(code[i].label);
        backward_branches = it == bound_at.end() || it->second < i;
      }
    }
  }
  std::unordered_map<int, FactTable> incoming;
  bool reachable = true;  // false between an unconditional jmp and a label

  for (size_t i = 0; i < code.size(); ++i) {
    LInsn insn = code[i];

    // (1) cmp r, 0 -> test r, r
    if (insn.op == LOp::kCmpRegImm32 && insn.imm == 0) {
      insn.op = LOp::kTestRegReg;
      insn.src = insn.dst;
      ++rewrites;
    }

    // (2) jmp to the label bound by the next instruction
    if (insn.op == LOp::kJmp && i + 1 < code.size() &&
        code[i + 1].op == LOp::kBind && code[i + 1].label == insn.label) {
      ++rewrites;
      continue;  // control falls through; facts carry unchanged
    }

    // (3) mov r, r
    if (insn.op == LOp::kMovRegReg && insn.dst == insn.src) {
      ++rewrites;
      continue;
    }

    // (4) redundant reload
    if (insn.op == LOp::kLoadRegMem && reachable &&
        facts.Holds(insn.dst, insn.base, insn.disp, insn.width)) {
      ++rewrites;
      continue;
    }

    // Update dataflow state.
    switch (insn.op) {
      case LOp::kLoadRegMem:
        facts.KillReg(insn.dst);
        facts.Record(insn.dst, insn.base, insn.disp, insn.width);
        break;
      case LOp::kCall:
        // Caller-saved registers die, and callees may write through filter
        // pointers into the frame: all facts die.
        facts.KillAll();
        break;
      case LOp::kStoreMemReg:
        facts.KillStore(insn.base, insn.disp, insn.width);
        break;
      case LOp::kStoreMemImm32:
        facts.KillStore(insn.base, insn.disp, 4);
        break;
      case LOp::kAluMemReg:
        facts.KillStore(insn.base, insn.disp, 8);
        break;
      case LOp::kIncMem32:
        facts.KillStore(insn.base, insn.disp, 4);
        break;
      case LOp::kJcc: {
        auto [it, fresh] = incoming.try_emplace(insn.label, facts);
        if (!fresh) {
          it->second.IntersectWith(facts);
        }
        break;  // fall-through keeps current facts
      }
      case LOp::kJmp: {
        auto [it, fresh] = incoming.try_emplace(insn.label, facts);
        if (!fresh) {
          it->second.IntersectWith(facts);
        }
        reachable = false;
        facts.KillAll();
        break;
      }
      case LOp::kBind: {
        if (backward_branches) {
          facts.KillAll();
          reachable = true;
          break;
        }
        auto it = incoming.find(insn.label);
        if (!reachable) {
          // Only the recorded branches reach this point.
          facts = it != incoming.end() ? it->second : FactTable{};
        } else if (it != incoming.end()) {
          facts.IntersectWith(it->second);
        }
        reachable = true;
        break;
      }
      case LOp::kPop:
        facts.KillReg(insn.dst);
        break;
      default:
        if (WritesDst(insn)) {
          facts.KillReg(insn.dst);
        }
        break;
    }

    out.push_back(insn);
  }

  code = std::move(out);
  return rewrites;
}

}  // namespace

size_t Peephole(std::vector<LInsn>& code) {
  size_t total = 0;
  // Each pass only shrinks the program; a handful of iterations reaches a
  // fixpoint on realistic stubs.
  for (int iter = 0; iter < 4; ++iter) {
    size_t n = OnePass(code);
    total += n;
    if (n == 0) {
      break;
    }
  }
  return total;
}

}  // namespace codegen
}  // namespace spin
