#include "src/codegen/lir.h"

#include <cstdio>
#include <unordered_map>

#include "src/rt/panic.h"

namespace spin {
namespace codegen {

const char* RegName(Reg reg) {
  static const char* names[16] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp",
                                  "rsi", "rdi", "r8",  "r9",  "r10", "r11",
                                  "r12", "r13", "r14", "r15"};
  return names[static_cast<int>(reg) & 15];
}

Cond Negate(Cond cc) {
  // Condition codes pair even/odd with their negation.
  return static_cast<Cond>(static_cast<uint8_t>(cc) ^ 1);
}

const char* CondName(Cond cc) {
  switch (cc) {
    case Cond::kO:
      return "o";
    case Cond::kNo:
      return "no";
    case Cond::kB:
      return "b";
    case Cond::kAe:
      return "ae";
    case Cond::kE:
      return "e";
    case Cond::kNe:
      return "ne";
    case Cond::kBe:
      return "be";
    case Cond::kA:
      return "a";
    case Cond::kS:
      return "s";
    case Cond::kNs:
      return "ns";
    case Cond::kL:
      return "l";
    case Cond::kGe:
      return "ge";
    case Cond::kLe:
      return "le";
    case Cond::kG:
      return "g";
  }
  return "<bad>";
}

std::string LInsnToString(const LInsn& insn) {
  char buf[160];
  switch (insn.op) {
    case LOp::kMovRegImm:
      std::snprintf(buf, sizeof(buf), "mov %s, 0x%llx", RegName(insn.dst),
                    static_cast<unsigned long long>(insn.imm));
      break;
    case LOp::kMovRegReg:
      std::snprintf(buf, sizeof(buf), "mov %s, %s", RegName(insn.dst),
                    RegName(insn.src));
      break;
    case LOp::kLoadRegMem:
      std::snprintf(buf, sizeof(buf), "load%u %s, [%s%+d]", insn.width,
                    RegName(insn.dst), RegName(insn.base), insn.disp);
      break;
    case LOp::kStoreMemReg:
      std::snprintf(buf, sizeof(buf), "store%u [%s%+d], %s", insn.width,
                    RegName(insn.base), insn.disp, RegName(insn.src));
      break;
    case LOp::kStoreMemImm32:
      std::snprintf(buf, sizeof(buf), "store4 [%s%+d], 0x%llx",
                    RegName(insn.base), insn.disp,
                    static_cast<unsigned long long>(insn.imm));
      break;
    case LOp::kLea:
      std::snprintf(buf, sizeof(buf), "lea %s, [%s%+d]", RegName(insn.dst),
                    RegName(insn.base), insn.disp);
      break;
    case LOp::kAdd:
      std::snprintf(buf, sizeof(buf), "add %s, %s", RegName(insn.dst),
                    RegName(insn.src));
      break;
    case LOp::kSub:
      std::snprintf(buf, sizeof(buf), "sub %s, %s", RegName(insn.dst),
                    RegName(insn.src));
      break;
    case LOp::kAnd:
      std::snprintf(buf, sizeof(buf), "and %s, %s", RegName(insn.dst),
                    RegName(insn.src));
      break;
    case LOp::kOr:
      std::snprintf(buf, sizeof(buf), "or %s, %s", RegName(insn.dst),
                    RegName(insn.src));
      break;
    case LOp::kXor:
      std::snprintf(buf, sizeof(buf), "xor %s, %s", RegName(insn.dst),
                    RegName(insn.src));
      break;
    case LOp::kAluMemReg:
      std::snprintf(buf, sizeof(buf), "%s [%s%+d], %s",
                    insn.alu == AluSub::kAdd  ? "add"
                    : insn.alu == AluSub::kOr ? "or"
                                              : "and",
                    RegName(insn.base), insn.disp, RegName(insn.src));
      break;
    case LOp::kIncMem32:
      std::snprintf(buf, sizeof(buf), "inc dword [%s%+d]", RegName(insn.base),
                    insn.disp);
      break;
    case LOp::kShlImm:
      std::snprintf(buf, sizeof(buf), "shl %s, %llu", RegName(insn.dst),
                    static_cast<unsigned long long>(insn.imm));
      break;
    case LOp::kShrImm:
      std::snprintf(buf, sizeof(buf), "shr %s, %llu", RegName(insn.dst),
                    static_cast<unsigned long long>(insn.imm));
      break;
    case LOp::kCmpRegReg:
      std::snprintf(buf, sizeof(buf), "cmp %s, %s", RegName(insn.dst),
                    RegName(insn.src));
      break;
    case LOp::kCmpRegImm32:
      std::snprintf(buf, sizeof(buf), "cmp %s, 0x%llx", RegName(insn.dst),
                    static_cast<unsigned long long>(insn.imm));
      break;
    case LOp::kTestRegReg:
      std::snprintf(buf, sizeof(buf), "test %s, %s", RegName(insn.dst),
                    RegName(insn.src));
      break;
    case LOp::kSetcc:
      std::snprintf(buf, sizeof(buf), "set%s %s.b", CondName(insn.cc),
                    RegName(insn.dst));
      break;
    case LOp::kMovzx8:
      std::snprintf(buf, sizeof(buf), "movzx %s, %s.b", RegName(insn.dst),
                    RegName(insn.dst));
      break;
    case LOp::kCall:
      std::snprintf(buf, sizeof(buf), "call %s", RegName(insn.dst));
      break;
    case LOp::kPush:
      std::snprintf(buf, sizeof(buf), "push %s", RegName(insn.dst));
      break;
    case LOp::kPop:
      std::snprintf(buf, sizeof(buf), "pop %s", RegName(insn.dst));
      break;
    case LOp::kJcc:
      std::snprintf(buf, sizeof(buf), "j%s L%d", CondName(insn.cc),
                    insn.label);
      break;
    case LOp::kJmp:
      std::snprintf(buf, sizeof(buf), "jmp L%d", insn.label);
      break;
    case LOp::kBind:
      std::snprintf(buf, sizeof(buf), "L%d:", insn.label);
      break;
    case LOp::kRet:
      std::snprintf(buf, sizeof(buf), "ret");
      break;
  }
  return buf;
}

namespace {

class Assembler {
 public:
  std::vector<uint8_t> bytes;
  std::unordered_map<int, size_t> label_offsets;
  struct Fixup {
    size_t at;   // offset of the rel32 field
    int label;
  };
  std::vector<Fixup> fixups;

  void Byte(uint8_t b) { bytes.push_back(b); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      Byte(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      Byte(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  // REX prefix; emitted when any bit set or `force` (byte-register access
  // to spl/bpl/sil/dil requires an empty REX).
  void Rex(bool w, int reg, int rm, bool force = false) {
    uint8_t rex = 0x40;
    if (w) {
      rex |= 0x08;
    }
    if (reg >= 8) {
      rex |= 0x04;
    }
    if (rm >= 8) {
      rex |= 0x01;
    }
    if (rex != 0x40 || force) {
      Byte(rex);
    }
  }

  // ModRM (+SIB +disp) for a register-direct operand.
  void ModRmReg(int reg, int rm) {
    Byte(static_cast<uint8_t>(0xC0 | ((reg & 7) << 3) | (rm & 7)));
  }

  // ModRM (+SIB +disp) for [base + disp].
  void ModRmMem(int reg, int base, int32_t disp) {
    int base_low = base & 7;
    bool need_sib = base_low == 4;  // rsp/r12
    uint8_t mod;
    if (disp == 0 && base_low != 5) {  // rbp/r13 need an explicit disp
      mod = 0x00;
    } else if (disp >= -128 && disp <= 127) {
      mod = 0x40;
    } else {
      mod = 0x80;
    }
    Byte(static_cast<uint8_t>(mod | ((reg & 7) << 3) | (need_sib ? 4 : base_low)));
    if (need_sib) {
      Byte(0x24);  // scale=0, no index, base in low bits of modrm base
    }
    if (mod == 0x40) {
      Byte(static_cast<uint8_t>(disp));
    } else if (mod == 0x80) {
      U32(static_cast<uint32_t>(disp));
    }
  }
};

}  // namespace

std::vector<uint8_t> Encode(const std::vector<LInsn>& code) {
  Assembler a;
  for (const LInsn& insn : code) {
    int dst = static_cast<int>(insn.dst);
    int src = static_cast<int>(insn.src);
    int base = static_cast<int>(insn.base);
    switch (insn.op) {
      case LOp::kMovRegImm: {
        int64_t sv = static_cast<int64_t>(insn.imm);
        if (sv >= INT32_MIN && sv < 0) {
          // mov r64, simm32 (sign-extending C7 form)
          a.Rex(true, 0, dst);
          a.Byte(0xC7);
          a.ModRmReg(0, dst);
          a.U32(static_cast<uint32_t>(insn.imm));
        } else if ((insn.imm >> 32) == 0) {
          // mov r32, imm32 zero-extends: shortest form
          a.Rex(false, 0, dst);
          a.Byte(static_cast<uint8_t>(0xB8 + (dst & 7)));
          a.U32(static_cast<uint32_t>(insn.imm));
        } else {
          a.Rex(true, 0, dst);
          a.Byte(static_cast<uint8_t>(0xB8 + (dst & 7)));
          a.U64(insn.imm);
        }
        break;
      }
      case LOp::kMovRegReg:
        a.Rex(true, src, dst);
        a.Byte(0x89);
        a.ModRmReg(src, dst);
        break;
      case LOp::kLoadRegMem:
        switch (insn.width) {
          case 1:
            a.Rex(true, dst, base);
            a.Byte(0x0F);
            a.Byte(0xB6);
            break;
          case 2:
            a.Rex(true, dst, base);
            a.Byte(0x0F);
            a.Byte(0xB7);
            break;
          case 4:
            a.Rex(false, dst, base);  // 32-bit load zero-extends
            a.Byte(0x8B);
            break;
          case 8:
            a.Rex(true, dst, base);
            a.Byte(0x8B);
            break;
          default:
            SPIN_PANIC("bad load width %u", insn.width);
        }
        a.ModRmMem(dst, base, insn.disp);
        break;
      case LOp::kStoreMemReg:
        switch (insn.width) {
          case 1:
            // Byte stores from spl/bpl/sil/dil need an empty REX.
            a.Rex(false, src, base, /*force=*/src >= 4 && src <= 7);
            a.Byte(0x88);
            break;
          case 2:
            a.Byte(0x66);
            a.Rex(false, src, base);
            a.Byte(0x89);
            break;
          case 4:
            a.Rex(false, src, base);
            a.Byte(0x89);
            break;
          case 8:
            a.Rex(true, src, base);
            a.Byte(0x89);
            break;
          default:
            SPIN_PANIC("bad store width %u", insn.width);
        }
        a.ModRmMem(src, base, insn.disp);
        break;
      case LOp::kStoreMemImm32:
        a.Rex(false, 0, base);
        a.Byte(0xC7);
        a.ModRmMem(0, base, insn.disp);
        a.U32(static_cast<uint32_t>(insn.imm));
        break;
      case LOp::kLea:
        a.Rex(true, dst, base);
        a.Byte(0x8D);
        a.ModRmMem(dst, base, insn.disp);
        break;
      case LOp::kAdd:
      case LOp::kSub:
      case LOp::kAnd:
      case LOp::kOr:
      case LOp::kXor:
      case LOp::kCmpRegReg:
      case LOp::kTestRegReg: {
        uint8_t opcode = 0;
        switch (insn.op) {
          case LOp::kAdd:
            opcode = 0x01;
            break;
          case LOp::kSub:
            opcode = 0x29;
            break;
          case LOp::kAnd:
            opcode = 0x21;
            break;
          case LOp::kOr:
            opcode = 0x09;
            break;
          case LOp::kXor:
            opcode = 0x31;
            break;
          case LOp::kCmpRegReg:
            opcode = 0x39;
            break;
          default:
            opcode = 0x85;  // test
            break;
        }
        a.Rex(true, src, dst);
        a.Byte(opcode);
        a.ModRmReg(src, dst);
        break;
      }
      case LOp::kAluMemReg: {
        uint8_t opcode = insn.alu == AluSub::kAdd  ? 0x01
                         : insn.alu == AluSub::kOr ? 0x09
                                                   : 0x21;
        a.Rex(true, src, base);
        a.Byte(opcode);
        a.ModRmMem(src, base, insn.disp);
        break;
      }
      case LOp::kIncMem32:
        a.Rex(false, 0, base);
        a.Byte(0xFF);
        a.ModRmMem(0, base, insn.disp);
        break;
      case LOp::kShlImm:
      case LOp::kShrImm:
        a.Rex(true, 0, dst);
        a.Byte(0xC1);
        a.ModRmReg(insn.op == LOp::kShlImm ? 4 : 5, dst);
        a.Byte(static_cast<uint8_t>(insn.imm));
        break;
      case LOp::kCmpRegImm32:
        a.Rex(true, 0, dst);
        a.Byte(0x81);
        a.ModRmReg(7, dst);
        a.U32(static_cast<uint32_t>(insn.imm));
        break;
      case LOp::kSetcc:
        a.Rex(false, 0, dst, /*force=*/dst >= 4 && dst <= 7);
        a.Byte(0x0F);
        a.Byte(static_cast<uint8_t>(0x90 + static_cast<uint8_t>(insn.cc)));
        a.ModRmReg(0, dst);
        break;
      case LOp::kMovzx8:
        a.Rex(true, dst, dst);
        a.Byte(0x0F);
        a.Byte(0xB6);
        a.ModRmReg(dst, dst);
        break;
      case LOp::kCall:
        a.Rex(false, 0, dst);
        a.Byte(0xFF);
        a.ModRmReg(2, dst);
        break;
      case LOp::kPush:
        a.Rex(false, 0, dst);
        a.Byte(static_cast<uint8_t>(0x50 + (dst & 7)));
        break;
      case LOp::kPop:
        a.Rex(false, 0, dst);
        a.Byte(static_cast<uint8_t>(0x58 + (dst & 7)));
        break;
      case LOp::kJcc:
        a.Byte(0x0F);
        a.Byte(static_cast<uint8_t>(0x80 + static_cast<uint8_t>(insn.cc)));
        a.fixups.push_back({a.bytes.size(), insn.label});
        a.U32(0);
        break;
      case LOp::kJmp:
        a.Byte(0xE9);
        a.fixups.push_back({a.bytes.size(), insn.label});
        a.U32(0);
        break;
      case LOp::kBind:
        a.label_offsets[insn.label] = a.bytes.size();
        break;
      case LOp::kRet:
        a.Byte(0xC3);
        break;
    }
  }
  for (const Assembler::Fixup& fixup : a.fixups) {
    auto it = a.label_offsets.find(fixup.label);
    SPIN_ASSERT_MSG(it != a.label_offsets.end(), "unbound label L%d",
                    fixup.label);
    int64_t rel = static_cast<int64_t>(it->second) -
                  static_cast<int64_t>(fixup.at + 4);
    SPIN_ASSERT(rel >= INT32_MIN && rel <= INT32_MAX);
    uint32_t rel32 = static_cast<uint32_t>(rel);
    for (int i = 0; i < 4; ++i) {
      a.bytes[fixup.at + i] = static_cast<uint8_t>(rel32 >> (8 * i));
    }
  }
  return a.bytes;
}

}  // namespace codegen
}  // namespace spin
