#include "src/codegen/stub_compiler.h"

#include <cstdlib>
#include <unordered_map>

#include "src/codegen/lir.h"
#include "src/codegen/peephole.h"
#include "src/rt/panic.h"

namespace spin {
namespace codegen {
namespace {

// SysV integer argument registers.
constexpr Reg kArgRegs[6] = {Reg::kRdi, Reg::kRsi, Reg::kRdx,
                             Reg::kRcx, Reg::kR8,  Reg::kR9};

// Micro-program virtual register mapping. All scratch (caller-saved or
// reloaded) registers; rbx stays the frame pointer, r11 is the address temp.
constexpr Reg kVregMap[micro::kNumRegs] = {Reg::kRax, Reg::kRcx, Reg::kRdx,
                                           Reg::kRsi, Reg::kRdi, Reg::kR8,
                                           Reg::kR9,  Reg::kR10};

constexpr Reg kAddrTemp = Reg::kR11;
constexpr Reg kFrameReg = Reg::kRbx;

struct Emitter {
  std::vector<LInsn> code;
  int next_label = 0;

  int NewLabel() { return next_label++; }

  LInsn& Emit(LInsn insn) {
    code.push_back(insn);
    return code.back();
  }

  void MovRegImm(Reg dst, uint64_t imm) {
    Emit({.op = LOp::kMovRegImm, .dst = dst, .imm = imm});
  }
  void MovRegReg(Reg dst, Reg src) {
    if (dst != src) {
      Emit({.op = LOp::kMovRegReg, .dst = dst, .src = src});
    }
  }
  void Load(Reg dst, Reg base, int32_t disp, uint8_t width = 8) {
    Emit({.op = LOp::kLoadRegMem, .dst = dst, .base = base, .width = width,
          .disp = disp});
  }
  void Store(Reg base, int32_t disp, Reg src, uint8_t width = 8) {
    Emit({.op = LOp::kStoreMemReg, .src = src, .base = base, .width = width,
          .disp = disp});
  }
  void Lea(Reg dst, Reg base, int32_t disp) {
    Emit({.op = LOp::kLea, .dst = dst, .base = base, .disp = disp});
  }
  void Alu(LOp op, Reg dst, Reg src) {
    Emit({.op = op, .dst = dst, .src = src});
  }
  void AluMem(AluSub sub, Reg base, int32_t disp, Reg src) {
    Emit({.op = LOp::kAluMemReg, .src = src, .base = base, .alu = sub,
          .disp = disp});
  }
  void Jcc(Cond cc, int label) {
    Emit({.op = LOp::kJcc, .cc = cc, .label = label});
  }
  void Jmp(int label) { Emit({.op = LOp::kJmp, .label = label}); }
  void Bind(int label) { Emit({.op = LOp::kBind, .label = label}); }
  void Setcc(Cond cc, Reg dst) {
    Emit({.op = LOp::kSetcc, .dst = dst, .cc = cc});
    Emit({.op = LOp::kMovzx8, .dst = dst});
  }
};

// How a lowered micro-program finds its arguments.
struct MicroEnv {
  bool standalone = false;  // args spilled to the red zone below rsp
  bool closure_form = false;
  uint64_t closure = 0;
};

Cond CondOfCmp(micro::Op op) {
  switch (op) {
    case micro::Op::kCmpEq:
      return Cond::kE;
    case micro::Op::kCmpNe:
      return Cond::kNe;
    case micro::Op::kCmpLtU:
      return Cond::kB;
    case micro::Op::kCmpLeU:
      return Cond::kBe;
    case micro::Op::kCmpLtS:
      return Cond::kL;
    case micro::Op::kCmpLeS:
      return Cond::kLe;
    default:
      SPIN_PANIC("not a compare op");
  }
}

bool IsCmp(micro::Op op) {
  switch (op) {
    case micro::Op::kCmpEq:
    case micro::Op::kCmpNe:
    case micro::Op::kCmpLtU:
    case micro::Op::kCmpLeU:
    case micro::Op::kCmpLtS:
    case micro::Op::kCmpLeS:
      return true;
    default:
      return false;
  }
}

void LowerLoadArg(Emitter& e, const MicroEnv& env, Reg dst, uint64_t index) {
  if (env.closure_form) {
    if (index == 0) {
      e.MovRegImm(dst, env.closure);
      return;
    }
    index -= 1;
  }
  if (env.standalone) {
    // Arguments were spilled to the red zone: [rsp - 8(i+1)].
    e.Load(dst, Reg::kRsp, -8 * (static_cast<int32_t>(index) + 1));
  } else {
    e.Load(dst, kFrameReg,
           static_cast<int32_t>(kFrameArgsOffset + 8 * index));
  }
}

// Lowers `prog` into `e`. On exit the return value is in rax and control is
// at `done` (a fresh label bound at the end). `count` limits lowering to the
// first `count` instructions (used by the guard-fusion path).
void LowerMicroBody(Emitter& e, const micro::Program& prog,
                    const MicroEnv& env, size_t count, int done) {
  const std::vector<micro::Insn>& code = prog.code();
  SPIN_ASSERT(count <= code.size());
  // Labels for jump targets.
  std::unordered_map<size_t, int> pc_labels;
  for (size_t i = 0; i < count; ++i) {
    const micro::Insn& insn = code[i];
    if (insn.op == micro::Op::kJz || insn.op == micro::Op::kJmp) {
      size_t target = static_cast<size_t>(insn.imm);
      SPIN_ASSERT(target <= count);
      if (!pc_labels.count(target)) {
        pc_labels[target] = e.NewLabel();
      }
    }
  }
  auto R = [](uint8_t v) { return kVregMap[v]; };
  for (size_t i = 0; i < count; ++i) {
    auto it = pc_labels.find(i);
    if (it != pc_labels.end()) {
      e.Bind(it->second);
    }
    const micro::Insn& insn = code[i];
    switch (insn.op) {
      case micro::Op::kLoadArg:
        LowerLoadArg(e, env, R(insn.dst), insn.imm);
        break;
      case micro::Op::kLoadImm:
        e.MovRegImm(R(insn.dst), insn.imm);
        break;
      case micro::Op::kLoadGlobal:
        e.MovRegImm(kAddrTemp, insn.imm);
        e.Load(R(insn.dst), kAddrTemp, 0,
               static_cast<uint8_t>(1u << insn.b));
        break;
      case micro::Op::kLoadField:
        e.Load(R(insn.dst), R(insn.a), static_cast<int32_t>(insn.imm),
               static_cast<uint8_t>(1u << insn.b));
        break;
      case micro::Op::kStoreGlobal:
        e.MovRegImm(kAddrTemp, insn.imm);
        e.Store(kAddrTemp, 0, R(insn.a), static_cast<uint8_t>(1u << insn.b));
        break;
      case micro::Op::kStoreField:
        // a = base, b = source, dst = width exponent.
        e.Store(R(insn.a), static_cast<int32_t>(insn.imm), R(insn.b),
                static_cast<uint8_t>(1u << insn.dst));
        break;
      case micro::Op::kMov:
        e.MovRegReg(R(insn.dst), R(insn.a));
        break;
      case micro::Op::kAdd:
      case micro::Op::kSub:
      case micro::Op::kAnd:
      case micro::Op::kOr:
      case micro::Op::kXor: {
        LOp lop = insn.op == micro::Op::kAdd   ? LOp::kAdd
                  : insn.op == micro::Op::kSub ? LOp::kSub
                  : insn.op == micro::Op::kAnd ? LOp::kAnd
                  : insn.op == micro::Op::kOr  ? LOp::kOr
                                               : LOp::kXor;
        // dst <- a op b with two-address LIR: move a into dst first. If
        // dst == b we need the temp to avoid clobbering.
        if (insn.dst == insn.b && insn.dst != insn.a) {
          e.MovRegReg(kAddrTemp, R(insn.b));
          e.MovRegReg(R(insn.dst), R(insn.a));
          e.Alu(lop, R(insn.dst), kAddrTemp);
        } else {
          e.MovRegReg(R(insn.dst), R(insn.a));
          e.Alu(lop, R(insn.dst), R(insn.b));
        }
        break;
      }
      case micro::Op::kShlImm:
      case micro::Op::kShrImm:
        e.MovRegReg(R(insn.dst), R(insn.a));
        e.Emit({.op = insn.op == micro::Op::kShlImm ? LOp::kShlImm
                                                    : LOp::kShrImm,
                .dst = R(insn.dst), .imm = insn.imm});
        break;
      case micro::Op::kCmpEq:
      case micro::Op::kCmpNe:
      case micro::Op::kCmpLtU:
      case micro::Op::kCmpLeU:
      case micro::Op::kCmpLtS:
      case micro::Op::kCmpLeS:
        e.Alu(LOp::kCmpRegReg, R(insn.a), R(insn.b));
        e.Setcc(CondOfCmp(insn.op), R(insn.dst));
        break;
      case micro::Op::kNot:
        e.Emit({.op = LOp::kTestRegReg, .dst = R(insn.a), .src = R(insn.a)});
        e.Setcc(Cond::kE, R(insn.dst));
        break;
      case micro::Op::kJz: {
        e.Emit({.op = LOp::kTestRegReg, .dst = R(insn.a), .src = R(insn.a)});
        e.Jcc(Cond::kE, pc_labels.at(static_cast<size_t>(insn.imm)));
        break;
      }
      case micro::Op::kJmp:
        e.Jmp(pc_labels.at(static_cast<size_t>(insn.imm)));
        break;
      case micro::Op::kRet:
        e.MovRegReg(Reg::kRax, R(insn.a));
        e.Jmp(done);
        break;
      case micro::Op::kRetImm:
        e.MovRegImm(Reg::kRax, insn.imm);
        e.Jmp(done);
        break;
    }
  }
  // A label may target the instruction one past the end (validator forbids
  // it, but be safe for the fusion path's truncated counts).
  auto it = pc_labels.find(count);
  if (it != pc_labels.end()) {
    e.Bind(it->second);
  }
}

// Register semantics are zero-at-entry: zero the registers the program may
// read before writing (matching the interpreter's zeroed register file).
void EmitZeroUndefined(Emitter& e, const micro::Program& prog) {
  uint8_t mask = prog.UndefinedReads();
  for (int v = 0; v < micro::kNumRegs; ++v) {
    if ((mask >> v) & 1) {
      e.Alu(LOp::kXor, kVregMap[v], kVregMap[v]);
    }
  }
}

// Lowers a full micro-program; result lands in rax.
void LowerMicroValue(Emitter& e, const micro::Program& prog,
                     const MicroEnv& env) {
  EmitZeroUndefined(e, prog);
  int done = e.NewLabel();
  LowerMicroBody(e, prog, env, prog.code().size(), done);
  e.Bind(done);
}

// Lowers a micro-program used as a guard: control transfers to `fail_label`
// when the program returns zero. Applies the compare-tail fusion: a
// straight-line program ending in {cmp d,a,b ; ret d} branches directly on
// the flags instead of materializing the boolean.
void LowerMicroGuard(Emitter& e, const micro::Program& prog,
                     const MicroEnv& env, int fail_label) {
  const std::vector<micro::Insn>& code = prog.code();
  size_t n = code.size();
  bool straight_line = true;
  for (size_t i = 0; i < n; ++i) {
    const micro::Insn& insn = code[i];
    bool early_ret = (insn.op == micro::Op::kRet ||
                      insn.op == micro::Op::kRetImm) &&
                     i + 1 < n;
    if (insn.op == micro::Op::kJz || insn.op == micro::Op::kJmp ||
        early_ret) {
      straight_line = false;
      break;
    }
  }
  if (straight_line && n >= 2 && IsCmp(code[n - 2].op) &&
      code[n - 1].op == micro::Op::kRet &&
      code[n - 1].a == code[n - 2].dst) {
    EmitZeroUndefined(e, prog);
    int done = e.NewLabel();
    LowerMicroBody(e, prog, env, n - 2, done);
    e.Bind(done);  // straight line: label is trivially here
    const micro::Insn& cmp = code[n - 2];
    e.Alu(LOp::kCmpRegReg, kVregMap[cmp.a], kVregMap[cmp.b]);
    e.Jcc(Negate(CondOfCmp(cmp.op)), fail_label);
    return;
  }
  LowerMicroValue(e, prog, env);
  e.Emit({.op = LOp::kTestRegReg, .dst = Reg::kRax, .src = Reg::kRax});
  e.Jcc(Cond::kE, fail_label);
}

// Loads the event arguments into the SysV argument registers for a direct
// call, applying the closure shift and filter by-ref (address-of-slot)
// conventions.
void EmitCallArgs(Emitter& e, const CallableSpec& callable, int num_args,
                  const std::vector<uint8_t>& byref_params) {
  int shift = callable.closure_form ? 1 : 0;
  for (int i = 0; i < num_args; ++i) {
    Reg reg = kArgRegs[i + shift];
    bool byref = false;
    for (uint8_t p : byref_params) {
      if (p == i) {
        byref = true;
        break;
      }
    }
    int32_t disp = static_cast<int32_t>(kFrameArgsOffset + 8 * i);
    if (byref) {
      e.Lea(reg, kFrameReg, disp);
    } else {
      e.Load(reg, kFrameReg, disp);
    }
  }
  if (callable.closure_form) {
    e.MovRegImm(kArgRegs[0], reinterpret_cast<uintptr_t>(callable.closure));
  }
  e.MovRegImm(Reg::kRax, reinterpret_cast<uintptr_t>(callable.fn));
  e.Emit({.op = LOp::kCall, .dst = Reg::kRax});
}

bool UseInline(const StubSpec& spec, const CallableSpec& callable) {
  return spec.inline_micro && callable.prog != nullptr &&
         callable.prog->Validate() == micro::ValidateStatus::kOk;
}

// Emits one binding's guards (branching to `fail_label` when any guard
// rejects), its handler call/inline body, the result fold, and the fired
// increment. Control falls through on success.
void EmitBindingBody(Emitter& e, const StubSpec& spec,
                     const BindingSpec& binding, int fail_label) {
  for (const CallableSpec& guard : binding.guards) {
    if (UseInline(spec, guard)) {
      MicroEnv env;
      env.closure_form = guard.closure_form;
      env.closure = reinterpret_cast<uintptr_t>(guard.closure);
      LowerMicroGuard(e, *guard.prog, env, fail_label);
    } else {
      EmitCallArgs(e, guard, spec.num_args, {});
      // Only %al is defined for a bool return.
      e.Emit({.op = LOp::kMovzx8, .dst = Reg::kRax});
      e.Emit({.op = LOp::kTestRegReg, .dst = Reg::kRax, .src = Reg::kRax});
      e.Jcc(Cond::kE, fail_label);
    }
  }
  if (UseInline(spec, binding.handler)) {
    MicroEnv env;
    env.closure_form = binding.handler.closure_form;
    env.closure = reinterpret_cast<uintptr_t>(binding.handler.closure);
    LowerMicroValue(e, *binding.handler.prog, env);
  } else {
    EmitCallArgs(e, binding.handler, spec.num_args, binding.byref_params);
    if (spec.policy != ResultPolicy::kNone && spec.result_is_bool) {
      e.Emit({.op = LOp::kMovzx8, .dst = Reg::kRax});
    }
  }
  switch (spec.policy) {
    case ResultPolicy::kNone:
      break;
    case ResultPolicy::kLast:
      e.Store(kFrameReg, static_cast<int32_t>(kFrameResultOffset),
              Reg::kRax);
      break;
    case ResultPolicy::kOr:
      e.AluMem(AluSub::kOr, kFrameReg,
               static_cast<int32_t>(kFrameResultOffset), Reg::kRax);
      break;
    case ResultPolicy::kAnd:
      e.AluMem(AluSub::kAnd, kFrameReg,
               static_cast<int32_t>(kFrameResultOffset), Reg::kRax);
      break;
    case ResultPolicy::kSum:
      e.AluMem(AluSub::kAdd, kFrameReg,
               static_cast<int32_t>(kFrameResultOffset), Reg::kRax);
      break;
  }
  e.Emit({.op = LOp::kIncMem32, .base = kFrameReg,
          .disp = static_cast<int32_t>(kFrameFiredOffset)});
}

// Compares the field register against a 64-bit constant (r11 as temp when
// the constant does not fit a sign-extended imm32).
void EmitCompareConst(Emitter& e, Reg reg, uint64_t value) {
  if (value <= 0x7fffffffull) {
    e.Emit({.op = LOp::kCmpRegImm32, .dst = reg, .imm = value});
  } else {
    e.MovRegImm(kAddrTemp, value);
    e.Alu(LOp::kCmpRegReg, reg, kAddrTemp);
  }
}

// Emits the binary search of the guard decision tree over cases [lo, hi).
// `field` holds the masked field value; `case_labels[i]` is the entry for
// cases[i]'s binding; misses jump to `done`.
void EmitTreeSearch(Emitter& e, const std::vector<TreeCase>& cases,
                    const std::vector<int>& case_labels, Reg field,
                    size_t lo, size_t hi, int done) {
  size_t count = hi - lo;
  if (count <= 3) {
    for (size_t i = lo; i < hi; ++i) {
      EmitCompareConst(e, field, cases[i].value);
      e.Jcc(Cond::kE, case_labels[i]);
    }
    e.Jmp(done);
    return;
  }
  size_t mid = lo + count / 2;
  int lower = e.NewLabel();
  EmitCompareConst(e, field, cases[mid].value);
  e.Jcc(Cond::kB, lower);
  EmitTreeSearch(e, cases, case_labels, field, mid, hi, done);
  e.Bind(lower);
  EmitTreeSearch(e, cases, case_labels, field, lo, mid, done);
}

}  // namespace

CompiledStub::CompiledStub(std::unique_ptr<CodeBuffer> buffer,
                           std::string lir_text, size_t lir_insns,
                           size_t peephole_rewrites)
    : buffer_(std::move(buffer)),
      lir_text_(std::move(lir_text)),
      lir_insns_(lir_insns),
      peephole_rewrites_(peephole_rewrites) {}

std::unique_ptr<CompiledStub> CompiledStub::Clone() const {
  // The emitted code is position-independent: callee addresses are imm64
  // materializations called through a register, and every branch is an
  // internal rel32 resolved at emission. A byte copy into fresh pages is
  // therefore an exact replica. The source mapping is PROT_READ|PROT_EXEC,
  // so reading it back is legal.
  const auto* code = static_cast<const uint8_t*>(buffer_->entry());
  std::vector<uint8_t> bytes(code, code + buffer_->code_size());
  auto buffer = CodeBuffer::Create(bytes);
  if (buffer == nullptr) {
    return nullptr;
  }
  return std::make_unique<CompiledStub>(std::move(buffer), lir_text_,
                                        lir_insns_, peephole_rewrites_);
}

bool CodegenAvailable() {
#if defined(SPIN_JIT_X86_64)
  static const bool disabled = std::getenv("SPIN_DISABLE_JIT") != nullptr;
  return !disabled;
#else
  return false;
#endif
}

bool StubEligible(const StubSpec& spec, std::string* why) {
  auto fail = [&](const char* reason) {
    if (why != nullptr) {
      *why = reason;
    }
    return false;
  };
  if (spec.num_args > 6) {
    return fail("more than 6 register arguments");
  }
  for (const BindingSpec& binding : spec.bindings) {
    std::vector<const CallableSpec*> callables;
    callables.push_back(&binding.handler);
    for (const CallableSpec& g : binding.guards) {
      callables.push_back(&g);
    }
    for (const CallableSpec* c : callables) {
      if (c->closure_form && spec.num_args > 5) {
        return fail("closure plus more than 5 arguments");
      }
      if (!UseInline(spec, *c) && c->fn == nullptr) {
        return fail("callable has no native entry and cannot be inlined");
      }
    }
    for (uint8_t p : binding.byref_params) {
      if (p >= spec.num_args) {
        return fail("by-ref parameter index out of range");
      }
    }
  }
  if (spec.tree.has_value()) {
    const StubTree& tree = *spec.tree;
    if (tree.arg >= spec.num_args) {
      return fail("tree argument index out of range");
    }
    if (tree.cases.size() != spec.bindings.size()) {
      return fail("tree must cover every binding exactly once");
    }
    std::vector<bool> covered(spec.bindings.size(), false);
    for (size_t i = 0; i < tree.cases.size(); ++i) {
      const TreeCase& c = tree.cases[i];
      if (c.binding_index >= spec.bindings.size() ||
          covered[c.binding_index]) {
        return fail("tree case indices must be a permutation of bindings");
      }
      covered[c.binding_index] = true;
      if (i > 0 && tree.cases[i - 1].value >= c.value) {
        return fail("tree case values must be sorted and distinct");
      }
    }
  }
  return true;
}

std::unique_ptr<CompiledStub> CompileStub(const StubSpec& spec) {
  if (!CodegenAvailable() || !StubEligible(spec)) {
    return nullptr;
  }
  Emitter e;
  // Prologue: keep the frame pointer in rbx (callee-saved). After the push,
  // rsp is 16-byte aligned at every emitted call.
  e.Emit({.op = LOp::kPush, .dst = kFrameReg});
  e.MovRegReg(kFrameReg, Reg::kRdi);

  if (spec.tree.has_value()) {
    const StubTree& tree = *spec.tree;
    SPIN_ASSERT(tree.cases.size() == spec.bindings.size());
    int done = e.NewLabel();
    // Load the discriminating field once.
    e.Load(Reg::kRax, kFrameReg,
           static_cast<int32_t>(kFrameArgsOffset + 8 * tree.arg));
    e.Load(Reg::kRcx, Reg::kRax, static_cast<int32_t>(tree.offset),
           tree.width);
    uint64_t width_mask =
        tree.width == 8 ? ~0ull : ((1ull << (8 * tree.width)) - 1);
    if ((tree.mask & width_mask) != width_mask) {
      e.MovRegImm(Reg::kRdx, tree.mask);
      e.Alu(LOp::kAnd, Reg::kRcx, Reg::kRdx);
    }
    std::vector<int> case_labels;
    case_labels.reserve(tree.cases.size());
    for (size_t i = 0; i < tree.cases.size(); ++i) {
      case_labels.push_back(e.NewLabel());
    }
    EmitTreeSearch(e, tree.cases, case_labels, Reg::kRcx, 0,
                   tree.cases.size(), done);
    for (size_t i = 0; i < tree.cases.size(); ++i) {
      e.Bind(case_labels[i]);
      EmitBindingBody(e, spec, spec.bindings[tree.cases[i].binding_index],
                      done);
      e.Jmp(done);
    }
    e.Bind(done);
  } else {
    for (const BindingSpec& binding : spec.bindings) {
      int skip = e.NewLabel();
      EmitBindingBody(e, spec, binding, skip);
      e.Bind(skip);
    }
  }

  e.Emit({.op = LOp::kPop, .dst = kFrameReg});
  e.Emit({.op = LOp::kRet});

  size_t rewrites = spec.optimize ? Peephole(e.code) : 0;
  std::string text;
  for (const LInsn& insn : e.code) {
    text += LInsnToString(insn);
    text += '\n';
  }
  std::vector<uint8_t> bytes = Encode(e.code);
  std::unique_ptr<CodeBuffer> buffer = CodeBuffer::Create(bytes);
  if (buffer == nullptr) {
    return nullptr;
  }
  return std::make_unique<CompiledStub>(std::move(buffer), std::move(text),
                                        e.code.size(), rewrites);
}

std::unique_ptr<CompiledMicro> CompileMicro(const micro::Program& prog,
                                            bool optimize) {
  if (!CodegenAvailable() ||
      prog.Validate() != micro::ValidateStatus::kOk ||
      prog.num_args() > 6) {
    return nullptr;
  }
  Emitter e;
  // Leaf function: spill the register arguments into the red zone so
  // kLoadArg has a fixed home for each.
  for (int i = 0; i < prog.num_args(); ++i) {
    e.Store(Reg::kRsp, -8 * (i + 1), kArgRegs[i]);
  }
  MicroEnv env;
  env.standalone = true;
  LowerMicroValue(e, prog, env);
  e.Emit({.op = LOp::kRet});
  if (optimize) {
    Peephole(e.code);
  }
  std::vector<uint8_t> bytes = Encode(e.code);
  std::unique_ptr<CodeBuffer> buffer = CodeBuffer::Create(bytes);
  if (buffer == nullptr) {
    return nullptr;
  }
  return std::make_unique<CompiledMicro>(std::move(buffer));
}

}  // namespace codegen
}  // namespace spin
