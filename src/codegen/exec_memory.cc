#include "src/codegen/exec_memory.h"

#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cstring>

#include "src/rt/panic.h"

namespace spin {
namespace codegen {
namespace {

std::atomic<size_t> g_total_mapped{0};

size_t PageSize() {
  static const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return page;
}

}  // namespace

CodeBuffer::CodeBuffer(void* base, size_t code_size, size_t mapped_size)
    : base_(base), code_size_(code_size), mapped_size_(mapped_size) {
  g_total_mapped.fetch_add(mapped_size, std::memory_order_relaxed);
}

std::unique_ptr<CodeBuffer> CodeBuffer::Create(
    const std::vector<uint8_t>& code) {
  SPIN_ASSERT(!code.empty());
  size_t mapped = (code.size() + PageSize() - 1) & ~(PageSize() - 1);
  void* base = mmap(nullptr, mapped, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    return nullptr;
  }
  std::memcpy(base, code.data(), code.size());
  if (mprotect(base, mapped, PROT_READ | PROT_EXEC) != 0) {
    munmap(base, mapped);
    return nullptr;
  }
  return std::unique_ptr<CodeBuffer>(
      new CodeBuffer(base, code.size(), mapped));
}

CodeBuffer::~CodeBuffer() {
  g_total_mapped.fetch_sub(mapped_size_, std::memory_order_relaxed);
  munmap(base_, mapped_size_);
}

size_t CodeBuffer::TotalMappedBytes() {
  return g_total_mapped.load(std::memory_order_relaxed);
}

}  // namespace codegen
}  // namespace spin
