// Executable memory for runtime-generated code, with W^X discipline:
// pages are written while PROT_READ|PROT_WRITE and flipped to
// PROT_READ|PROT_EXEC before first use.
#ifndef SRC_CODEGEN_EXEC_MEMORY_H_
#define SRC_CODEGEN_EXEC_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace spin {
namespace codegen {

class CodeBuffer {
 public:
  // Copies `code` into fresh executable pages. Returns nullptr if the
  // platform refuses executable mappings.
  static std::unique_ptr<CodeBuffer> Create(const std::vector<uint8_t>& code);

  ~CodeBuffer();
  CodeBuffer(const CodeBuffer&) = delete;
  CodeBuffer& operator=(const CodeBuffer&) = delete;

  const void* entry() const { return base_; }
  size_t code_size() const { return code_size_; }
  size_t mapped_size() const { return mapped_size_; }

  // Total bytes of generated code currently mapped (diagnostics; feeds the
  // "too many handlers" memory-accounting story of §2.6).
  static size_t TotalMappedBytes();

 private:
  CodeBuffer(void* base, size_t code_size, size_t mapped_size);

  void* base_;
  size_t code_size_;
  size_t mapped_size_;
};

}  // namespace codegen
}  // namespace spin

#endif  // SRC_CODEGEN_EXEC_MEMORY_H_
