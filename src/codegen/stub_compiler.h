// Runtime compilation of specialized dispatch routines.
//
// "We use run-time code generation to build a specialized and optimized
// version of the dispatch routine. ... We specialize the code to the number
// of arguments in each event, and unroll the dispatch loop to transform
// handler invocations from indirect procedure calls through a list of
// handlers to direct procedure calls. We also inline the code of small
// guards and handlers directly into the dispatch routine. Finally, we use
// peephole optimizations to improve the quality of the generated code." (§3)
//
// CompileStub turns a StubSpec — the flattened form of an event's handler
// list — into x86-64 machine code with exactly that structure:
//   - the binding loop is unrolled; handler/guard addresses are immediates
//     (direct calls),
//   - guards and handlers supplied as micro-programs are inlined,
//   - results are folded per the event's result policy,
//   - the fired-handler count is maintained for the raise wrapper's
//     no-handler/default-handler logic.
//
// CompileMicro compiles a single micro-program into a standalone native
// procedure (args in registers, SysV). The dispatcher uses it to run micro
// guards/handlers *out of line* — the "no inline" arm of Table 1 — and the
// differential tests use it to check JIT == interpreter.
#ifndef SRC_CODEGEN_STUB_COMPILER_H_
#define SRC_CODEGEN_STUB_COMPILER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/codegen/exec_memory.h"
#include "src/codegen/frame.h"
#include "src/micro/program.h"

namespace spin {
namespace codegen {

// A native procedure or inlinable micro-program participating in dispatch.
struct CallableSpec {
  void* fn = nullptr;       // native entry (C ABI); required if prog unusable
  void* closure = nullptr;  // passed as the leading argument if closure_form
  bool closure_form = false;
  const micro::Program* prog = nullptr;  // inlined when inlining is enabled
};

struct BindingSpec {
  std::vector<CallableSpec> guards;  // every guard must return nonzero
  CallableSpec handler;
  // Indices of by-value event parameters the handler takes by reference
  // (filter installation, §2.3 "Passing arguments"): the stub passes the
  // address of the argument slot instead of its value.
  std::vector<uint8_t> byref_params;
};

// How multiple handler results combine (§2.3 "Handling results"). Custom
// result handlers take the interpreted path; these built-in policies are
// folded inline by generated code.
enum class ResultPolicy : uint8_t { kNone, kLast, kOr, kAnd, kSum };

// Guard decision tree (the §3.2 optimization the paper sketches as future
// work): when every binding discriminates on the same header field with a
// distinct constant, the stub loads the field once and binary-searches the
// sorted constants — O(log n) compares instead of n guard evaluations.
// Each matched binding's remaining guards are still evaluated after the
// tree selects it.
struct TreeCase {
  uint64_t value;        // pre-masked field value
  uint32_t binding_index;
};

struct StubTree {
  int arg = 0;            // event argument holding the base pointer
  uint64_t offset = 0;
  uint8_t width = 8;      // bytes
  uint64_t mask = ~0ull;
  std::vector<TreeCase> cases;  // sorted by value, values distinct
};

struct StubSpec {
  int num_args = 0;
  ResultPolicy policy = ResultPolicy::kNone;
  bool result_is_bool = false;  // normalize native bool returns (ABI: only
                                // %al is defined) before folding
  std::vector<BindingSpec> bindings;
  bool inline_micro = true;  // ablation: inline micro-programs?
  bool optimize = true;      // ablation: run the peephole pass?
  // When set, `bindings` are dispatched through the decision tree: exactly
  // the binding selected by the field value (if any) runs, after its
  // remaining guards pass. Every binding must appear in exactly one case.
  std::optional<StubTree> tree;
};

class CompiledStub {
 public:
  CompiledStub(std::unique_ptr<CodeBuffer> buffer, std::string lir_text,
               size_t lir_insns, size_t peephole_rewrites);

  // Byte-copies the routine into a fresh executable mapping. The emitted
  // code is position-independent (register-indirect calls, internal rel32
  // branches only), so the copy is an exact functional replica; sharded
  // dispatchers clone one compiled stub per shard so each shard's unrolled
  // dispatch loop owns its own I-cache lines. Returns nullptr if the
  // platform refuses a new executable mapping.
  std::unique_ptr<CompiledStub> Clone() const;

  DispatchStubFn entry() const {
    return reinterpret_cast<DispatchStubFn>(
        const_cast<void*>(buffer_->entry()));
  }
  size_t code_size() const { return buffer_->code_size(); }
  const std::string& lir_text() const { return lir_text_; }
  size_t lir_insns() const { return lir_insns_; }
  size_t peephole_rewrites() const { return peephole_rewrites_; }

 private:
  std::unique_ptr<CodeBuffer> buffer_;
  std::string lir_text_;
  size_t lir_insns_;
  size_t peephole_rewrites_;
};

class CompiledMicro {
 public:
  explicit CompiledMicro(std::unique_ptr<CodeBuffer> buffer)
      : buffer_(std::move(buffer)) {}
  // Cast to uint64_t(*)(uint64_t, ...) with the program's arity.
  void* entry() const { return const_cast<void*>(buffer_->entry()); }
  size_t code_size() const { return buffer_->code_size(); }

 private:
  std::unique_ptr<CodeBuffer> buffer_;
};

// True when this build/host can generate code (x86-64, JIT compiled in, and
// not disabled via the SPIN_DISABLE_JIT environment variable).
bool CodegenAvailable();

// Checks whether `spec` can be compiled: ≤6 register args (≤5 when any
// callable uses a closure), every callable resolvable (native fn, or a
// valid micro-program when inlining), and a built-in result policy.
// On failure returns false and explains in `why` if non-null.
bool StubEligible(const StubSpec& spec, std::string* why = nullptr);

// Compiles a dispatch stub; returns nullptr if ineligible or codegen is
// unavailable.
std::unique_ptr<CompiledStub> CompileStub(const StubSpec& spec);

// Compiles a micro-program into a standalone procedure; returns nullptr if
// codegen is unavailable or the program does not validate.
std::unique_ptr<CompiledMicro> CompileMicro(const micro::Program& prog,
                                            bool optimize = true);

}  // namespace codegen
}  // namespace spin

#endif  // SRC_CODEGEN_STUB_COMPILER_H_
