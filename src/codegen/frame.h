// RaiseFrame: the ABI between the dispatcher's raise path and a dispatch
// routine (generated stub or interpreter).
//
// A typed Event<R(Args...)>::Raise packs its arguments into 8-byte slots.
// By-value arguments are copied into the slots — this is the argument copy
// of §2.4 that lets filters mutate arguments without disturbing the raiser;
// VAR (by-ref) arguments store the pointer itself. The dispatch routine
// reads slots, calls handlers per the x86-64 SysV ABI (or unpacks them in
// the interpreter), folds results, and counts fired handlers.
//
// This header is portable; only the stub compiler is x86-64 specific.
#ifndef SRC_CODEGEN_FRAME_H_
#define SRC_CODEGEN_FRAME_H_

#include <cstddef>
#include <cstdint>

namespace spin {

inline constexpr int kMaxEventArgs = 8;

struct RaiseFrame {
  uint64_t args[kMaxEventArgs] = {};
  uint64_t result = 0;
  uint32_t fired = 0;
  uint32_t aborted = 0;  // handlers terminated (EPHEMERAL) or faulted
};

// Fixed offsets baked into generated code.
inline constexpr size_t kFrameArgsOffset = 0;
inline constexpr size_t kFrameResultOffset = 64;
inline constexpr size_t kFrameFiredOffset = 72;

static_assert(offsetof(RaiseFrame, args) == kFrameArgsOffset);
static_assert(offsetof(RaiseFrame, result) == kFrameResultOffset);
static_assert(offsetof(RaiseFrame, fired) == kFrameFiredOffset);

// Signature of a compiled dispatch routine.
using DispatchStubFn = void (*)(RaiseFrame*);

}  // namespace spin

#endif  // SRC_CODEGEN_FRAME_H_
