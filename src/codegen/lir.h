// LIR: the low-level instruction representation between the dispatch-stub
// compiler and the x86-64 encoder.
//
// The stub compiler emits LIR, the peephole optimizer rewrites it (§3:
// "we use peephole optimizations to improve the quality of the generated
// code"), and the encoder assembles it. Keeping a real IR — instead of
// emitting bytes directly — is what makes the peephole pass and its unit
// tests possible.
#ifndef SRC_CODEGEN_LIR_H_
#define SRC_CODEGEN_LIR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace spin {
namespace codegen {

// x86-64 general-purpose registers, numbered with their hardware encoding.
enum class Reg : uint8_t {
  kRax = 0,
  kRcx = 1,
  kRdx = 2,
  kRbx = 3,
  kRsp = 4,
  kRbp = 5,
  kRsi = 6,
  kRdi = 7,
  kR8 = 8,
  kR9 = 9,
  kR10 = 10,
  kR11 = 11,
  kR12 = 12,
  kR13 = 13,
  kR14 = 14,
  kR15 = 15,
};

const char* RegName(Reg reg);

// Condition codes, numbered with their hardware encoding (for 0x0F 0x8x and
// 0x0F 0x9x opcode arithmetic).
enum class Cond : uint8_t {
  kO = 0x0,
  kNo = 0x1,
  kB = 0x2,
  kAe = 0x3,
  kE = 0x4,
  kNe = 0x5,
  kBe = 0x6,
  kA = 0x7,
  kS = 0x8,
  kNs = 0x9,
  kL = 0xc,
  kGe = 0xd,
  kLe = 0xe,
  kG = 0xf,
};

Cond Negate(Cond cc);
const char* CondName(Cond cc);

enum class LOp : uint8_t {
  kMovRegImm,    // dst <- imm (64-bit value; encoder picks shortest form)
  kMovRegReg,    // dst <- src
  kLoadRegMem,   // dst <- zero-extended load of `width` bytes from [base+disp]
  kStoreMemReg,  // store low `width` bytes of src to [base+disp]
  kStoreMemImm32,  // 32-bit store of imm32 to [base+disp]
  kLea,          // dst <- base + disp
  kAdd,          // dst += src
  kSub,          // dst -= src
  kAnd,          // dst &= src
  kOr,           // dst |= src
  kXor,          // dst ^= src
  kAluMemReg,    // [base+disp] op= src (64-bit); alu_sub selects add/or/and
  kIncMem32,     // 32-bit increment of [base+disp]
  kShlImm,       // dst <<= imm (imm8)
  kShrImm,       // dst >>= imm (imm8, logical)
  kCmpRegReg,    // flags <- dst cmp src
  kCmpRegImm32,  // flags <- dst cmp imm32 (sign-extended)
  kTestRegReg,   // flags <- dst & src
  kSetcc,        // dst.b <- cc
  kMovzx8,       // dst <- zero-extend dst.b (after kSetcc)
  kCall,         // call through register dst
  kPush,         // push dst
  kPop,          // pop dst
  kJcc,          // conditional jump to label
  kJmp,          // jump to label
  kBind,         // label definition point
  kRet,          // ret
};

enum class AluSub : uint8_t { kAdd, kOr, kAnd };

struct LInsn {
  LOp op;
  Reg dst = Reg::kRax;
  Reg src = Reg::kRax;
  Reg base = Reg::kRax;
  uint8_t width = 8;  // 1, 2, 4, or 8 for loads/stores
  Cond cc = Cond::kE;
  AluSub alu = AluSub::kAdd;
  int32_t disp = 0;
  uint64_t imm = 0;
  int label = -1;
};

std::string LInsnToString(const LInsn& insn);

// Assembles LIR into machine code, resolving label fixups. Panics on
// malformed input (unbound label) — generator bugs, not user errors.
std::vector<uint8_t> Encode(const std::vector<LInsn>& code);

}  // namespace codegen
}  // namespace spin

#endif  // SRC_CODEGEN_LIR_H_
