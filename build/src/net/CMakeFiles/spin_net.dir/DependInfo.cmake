
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/compress.cc" "src/net/CMakeFiles/spin_net.dir/compress.cc.o" "gcc" "src/net/CMakeFiles/spin_net.dir/compress.cc.o.d"
  "/root/repo/src/net/host.cc" "src/net/CMakeFiles/spin_net.dir/host.cc.o" "gcc" "src/net/CMakeFiles/spin_net.dir/host.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/spin_net.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/spin_net.dir/packet.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/spin_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/spin_net.dir/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/spin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/spin_types.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/spin_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/micro/CMakeFiles/spin_micro.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/spin_rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
