file(REMOVE_RECURSE
  "CMakeFiles/spin_net.dir/compress.cc.o"
  "CMakeFiles/spin_net.dir/compress.cc.o.d"
  "CMakeFiles/spin_net.dir/host.cc.o"
  "CMakeFiles/spin_net.dir/host.cc.o.d"
  "CMakeFiles/spin_net.dir/packet.cc.o"
  "CMakeFiles/spin_net.dir/packet.cc.o.d"
  "CMakeFiles/spin_net.dir/tcp.cc.o"
  "CMakeFiles/spin_net.dir/tcp.cc.o.d"
  "libspin_net.a"
  "libspin_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spin_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
