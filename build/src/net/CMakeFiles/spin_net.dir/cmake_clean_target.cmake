file(REMOVE_RECURSE
  "libspin_net.a"
)
