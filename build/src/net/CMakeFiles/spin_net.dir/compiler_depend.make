# Empty compiler generated dependencies file for spin_net.
# This may be replaced when dependencies are built.
