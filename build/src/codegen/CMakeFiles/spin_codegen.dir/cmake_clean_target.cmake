file(REMOVE_RECURSE
  "libspin_codegen.a"
)
