# Empty compiler generated dependencies file for spin_codegen.
# This may be replaced when dependencies are built.
