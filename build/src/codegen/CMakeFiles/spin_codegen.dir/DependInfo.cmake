
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/exec_memory.cc" "src/codegen/CMakeFiles/spin_codegen.dir/exec_memory.cc.o" "gcc" "src/codegen/CMakeFiles/spin_codegen.dir/exec_memory.cc.o.d"
  "/root/repo/src/codegen/lir.cc" "src/codegen/CMakeFiles/spin_codegen.dir/lir.cc.o" "gcc" "src/codegen/CMakeFiles/spin_codegen.dir/lir.cc.o.d"
  "/root/repo/src/codegen/peephole.cc" "src/codegen/CMakeFiles/spin_codegen.dir/peephole.cc.o" "gcc" "src/codegen/CMakeFiles/spin_codegen.dir/peephole.cc.o.d"
  "/root/repo/src/codegen/stub_compiler.cc" "src/codegen/CMakeFiles/spin_codegen.dir/stub_compiler.cc.o" "gcc" "src/codegen/CMakeFiles/spin_codegen.dir/stub_compiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/spin_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/micro/CMakeFiles/spin_micro.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
