file(REMOVE_RECURSE
  "CMakeFiles/spin_codegen.dir/exec_memory.cc.o"
  "CMakeFiles/spin_codegen.dir/exec_memory.cc.o.d"
  "CMakeFiles/spin_codegen.dir/lir.cc.o"
  "CMakeFiles/spin_codegen.dir/lir.cc.o.d"
  "CMakeFiles/spin_codegen.dir/peephole.cc.o"
  "CMakeFiles/spin_codegen.dir/peephole.cc.o.d"
  "CMakeFiles/spin_codegen.dir/stub_compiler.cc.o"
  "CMakeFiles/spin_codegen.dir/stub_compiler.cc.o.d"
  "libspin_codegen.a"
  "libspin_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spin_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
