file(REMOVE_RECURSE
  "CMakeFiles/spin_rt.dir/epoch.cc.o"
  "CMakeFiles/spin_rt.dir/epoch.cc.o.d"
  "CMakeFiles/spin_rt.dir/panic.cc.o"
  "CMakeFiles/spin_rt.dir/panic.cc.o.d"
  "CMakeFiles/spin_rt.dir/thread_pool.cc.o"
  "CMakeFiles/spin_rt.dir/thread_pool.cc.o.d"
  "libspin_rt.a"
  "libspin_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spin_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
