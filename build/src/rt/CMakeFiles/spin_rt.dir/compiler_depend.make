# Empty compiler generated dependencies file for spin_rt.
# This may be replaced when dependencies are built.
