file(REMOVE_RECURSE
  "libspin_rt.a"
)
