file(REMOVE_RECURSE
  "libspin_fs.a"
)
