# Empty dependencies file for spin_fs.
# This may be replaced when dependencies are built.
