file(REMOVE_RECURSE
  "CMakeFiles/spin_fs.dir/logfs.cc.o"
  "CMakeFiles/spin_fs.dir/logfs.cc.o.d"
  "CMakeFiles/spin_fs.dir/vfs.cc.o"
  "CMakeFiles/spin_fs.dir/vfs.cc.o.d"
  "libspin_fs.a"
  "libspin_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spin_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
