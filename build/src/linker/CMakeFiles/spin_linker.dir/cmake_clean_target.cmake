file(REMOVE_RECURSE
  "libspin_linker.a"
)
