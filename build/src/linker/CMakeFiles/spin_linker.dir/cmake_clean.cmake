file(REMOVE_RECURSE
  "CMakeFiles/spin_linker.dir/domain.cc.o"
  "CMakeFiles/spin_linker.dir/domain.cc.o.d"
  "libspin_linker.a"
  "libspin_linker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spin_linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
