# Empty compiler generated dependencies file for spin_linker.
# This may be replaced when dependencies are built.
