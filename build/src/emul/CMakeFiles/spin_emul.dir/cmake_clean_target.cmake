file(REMOVE_RECURSE
  "libspin_emul.a"
)
