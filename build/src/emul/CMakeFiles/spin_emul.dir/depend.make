# Empty dependencies file for spin_emul.
# This may be replaced when dependencies are built.
