file(REMOVE_RECURSE
  "CMakeFiles/spin_emul.dir/mach.cc.o"
  "CMakeFiles/spin_emul.dir/mach.cc.o.d"
  "CMakeFiles/spin_emul.dir/osf.cc.o"
  "CMakeFiles/spin_emul.dir/osf.cc.o.d"
  "libspin_emul.a"
  "libspin_emul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spin_emul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
