file(REMOVE_RECURSE
  "libspin_micro.a"
)
