file(REMOVE_RECURSE
  "CMakeFiles/spin_micro.dir/interp.cc.o"
  "CMakeFiles/spin_micro.dir/interp.cc.o.d"
  "CMakeFiles/spin_micro.dir/pattern.cc.o"
  "CMakeFiles/spin_micro.dir/pattern.cc.o.d"
  "CMakeFiles/spin_micro.dir/program.cc.o"
  "CMakeFiles/spin_micro.dir/program.cc.o.d"
  "libspin_micro.a"
  "libspin_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spin_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
