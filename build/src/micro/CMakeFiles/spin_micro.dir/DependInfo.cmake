
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/micro/interp.cc" "src/micro/CMakeFiles/spin_micro.dir/interp.cc.o" "gcc" "src/micro/CMakeFiles/spin_micro.dir/interp.cc.o.d"
  "/root/repo/src/micro/pattern.cc" "src/micro/CMakeFiles/spin_micro.dir/pattern.cc.o" "gcc" "src/micro/CMakeFiles/spin_micro.dir/pattern.cc.o.d"
  "/root/repo/src/micro/program.cc" "src/micro/CMakeFiles/spin_micro.dir/program.cc.o" "gcc" "src/micro/CMakeFiles/spin_micro.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/spin_rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
