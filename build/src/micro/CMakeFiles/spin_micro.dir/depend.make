# Empty dependencies file for spin_micro.
# This may be replaced when dependencies are built.
