file(REMOVE_RECURSE
  "CMakeFiles/spin_core.dir/dispatch_state.cc.o"
  "CMakeFiles/spin_core.dir/dispatch_state.cc.o.d"
  "CMakeFiles/spin_core.dir/dispatcher.cc.o"
  "CMakeFiles/spin_core.dir/dispatcher.cc.o.d"
  "CMakeFiles/spin_core.dir/ephemeral.cc.o"
  "CMakeFiles/spin_core.dir/ephemeral.cc.o.d"
  "CMakeFiles/spin_core.dir/errors.cc.o"
  "CMakeFiles/spin_core.dir/errors.cc.o.d"
  "libspin_core.a"
  "libspin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
