# Empty dependencies file for spin_core.
# This may be replaced when dependencies are built.
