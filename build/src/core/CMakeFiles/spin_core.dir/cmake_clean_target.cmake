file(REMOVE_RECURSE
  "libspin_core.a"
)
