file(REMOVE_RECURSE
  "libspin_kernel.a"
)
