file(REMOVE_RECURSE
  "CMakeFiles/spin_kernel.dir/kernel.cc.o"
  "CMakeFiles/spin_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/spin_kernel.dir/vm.cc.o"
  "CMakeFiles/spin_kernel.dir/vm.cc.o.d"
  "libspin_kernel.a"
  "libspin_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spin_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
