# Empty dependencies file for spin_kernel.
# This may be replaced when dependencies are built.
