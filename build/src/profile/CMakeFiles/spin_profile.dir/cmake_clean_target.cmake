file(REMOVE_RECURSE
  "libspin_profile.a"
)
