# Empty dependencies file for spin_profile.
# This may be replaced when dependencies are built.
