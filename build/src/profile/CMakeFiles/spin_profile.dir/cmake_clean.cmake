file(REMOVE_RECURSE
  "CMakeFiles/spin_profile.dir/profile.cc.o"
  "CMakeFiles/spin_profile.dir/profile.cc.o.d"
  "libspin_profile.a"
  "libspin_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spin_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
