# Empty dependencies file for spin_types.
# This may be replaced when dependencies are built.
