
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/types/signature.cc" "src/types/CMakeFiles/spin_types.dir/signature.cc.o" "gcc" "src/types/CMakeFiles/spin_types.dir/signature.cc.o.d"
  "/root/repo/src/types/type_registry.cc" "src/types/CMakeFiles/spin_types.dir/type_registry.cc.o" "gcc" "src/types/CMakeFiles/spin_types.dir/type_registry.cc.o.d"
  "/root/repo/src/types/typecheck.cc" "src/types/CMakeFiles/spin_types.dir/typecheck.cc.o" "gcc" "src/types/CMakeFiles/spin_types.dir/typecheck.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/spin_rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
