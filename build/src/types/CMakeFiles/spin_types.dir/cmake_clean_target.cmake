file(REMOVE_RECURSE
  "libspin_types.a"
)
