file(REMOVE_RECURSE
  "CMakeFiles/spin_types.dir/signature.cc.o"
  "CMakeFiles/spin_types.dir/signature.cc.o.d"
  "CMakeFiles/spin_types.dir/type_registry.cc.o"
  "CMakeFiles/spin_types.dir/type_registry.cc.o.d"
  "CMakeFiles/spin_types.dir/typecheck.cc.o"
  "CMakeFiles/spin_types.dir/typecheck.cc.o.d"
  "libspin_types.a"
  "libspin_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spin_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
