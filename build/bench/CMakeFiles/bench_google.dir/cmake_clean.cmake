file(REMOVE_RECURSE
  "CMakeFiles/bench_google.dir/bench_google.cc.o"
  "CMakeFiles/bench_google.dir/bench_google.cc.o.d"
  "bench_google"
  "bench_google.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_google.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
