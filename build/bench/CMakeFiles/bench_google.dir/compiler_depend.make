# Empty compiler generated dependencies file for bench_google.
# This may be replaced when dependencies are built.
