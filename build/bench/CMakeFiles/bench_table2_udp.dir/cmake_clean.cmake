file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_udp.dir/bench_table2_udp.cc.o"
  "CMakeFiles/bench_table2_udp.dir/bench_table2_udp.cc.o.d"
  "bench_table2_udp"
  "bench_table2_udp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_udp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
