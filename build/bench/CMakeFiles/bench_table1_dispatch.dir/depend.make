# Empty dependencies file for bench_table1_dispatch.
# This may be replaced when dependencies are built.
