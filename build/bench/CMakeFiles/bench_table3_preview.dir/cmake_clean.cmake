file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_preview.dir/bench_table3_preview.cc.o"
  "CMakeFiles/bench_table3_preview.dir/bench_table3_preview.cc.o.d"
  "bench_table3_preview"
  "bench_table3_preview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_preview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
