# Empty dependencies file for bench_table3_preview.
# This may be replaced when dependencies are built.
