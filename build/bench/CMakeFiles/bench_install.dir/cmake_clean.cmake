file(REMOVE_RECURSE
  "CMakeFiles/bench_install.dir/bench_install.cc.o"
  "CMakeFiles/bench_install.dir/bench_install.cc.o.d"
  "bench_install"
  "bench_install.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_install.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
