# Empty dependencies file for bench_install.
# This may be replaced when dependencies are built.
