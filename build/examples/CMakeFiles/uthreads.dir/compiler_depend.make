# Empty compiler generated dependencies file for uthreads.
# This may be replaced when dependencies are built.
