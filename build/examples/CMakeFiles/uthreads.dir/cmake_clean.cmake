file(REMOVE_RECURSE
  "CMakeFiles/uthreads.dir/uthreads.cpp.o"
  "CMakeFiles/uthreads.dir/uthreads.cpp.o.d"
  "uthreads"
  "uthreads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uthreads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
