file(REMOVE_RECURSE
  "CMakeFiles/fs_filter.dir/fs_filter.cpp.o"
  "CMakeFiles/fs_filter.dir/fs_filter.cpp.o.d"
  "fs_filter"
  "fs_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
