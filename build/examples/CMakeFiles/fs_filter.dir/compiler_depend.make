# Empty compiler generated dependencies file for fs_filter.
# This may be replaced when dependencies are built.
