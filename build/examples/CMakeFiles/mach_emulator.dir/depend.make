# Empty dependencies file for mach_emulator.
# This may be replaced when dependencies are built.
