file(REMOVE_RECURSE
  "CMakeFiles/mach_emulator.dir/mach_emulator.cpp.o"
  "CMakeFiles/mach_emulator.dir/mach_emulator.cpp.o.d"
  "mach_emulator"
  "mach_emulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mach_emulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
