
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/mach_emulator.cpp" "examples/CMakeFiles/mach_emulator.dir/mach_emulator.cpp.o" "gcc" "examples/CMakeFiles/mach_emulator.dir/mach_emulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/emul/CMakeFiles/spin_emul.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/spin_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/spin_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spin_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/spin_types.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/spin_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/micro/CMakeFiles/spin_micro.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/spin_rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
