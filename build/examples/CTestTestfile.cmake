# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mach_emulator "/root/repo/build/examples/mach_emulator")
set_tests_properties(example_mach_emulator PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_packet_filter "/root/repo/build/examples/packet_filter")
set_tests_properties(example_packet_filter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fs_filter "/root/repo/build/examples/fs_filter")
set_tests_properties(example_fs_filter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_uthreads "/root/repo/build/examples/uthreads")
set_tests_properties(example_uthreads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_web_server "/root/repo/build/examples/web_server")
set_tests_properties(example_web_server PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
