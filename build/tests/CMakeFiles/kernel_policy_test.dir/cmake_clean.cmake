file(REMOVE_RECURSE
  "CMakeFiles/kernel_policy_test.dir/kernel_policy_test.cc.o"
  "CMakeFiles/kernel_policy_test.dir/kernel_policy_test.cc.o.d"
  "kernel_policy_test"
  "kernel_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
