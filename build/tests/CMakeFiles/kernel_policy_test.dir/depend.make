# Empty dependencies file for kernel_policy_test.
# This may be replaced when dependencies are built.
