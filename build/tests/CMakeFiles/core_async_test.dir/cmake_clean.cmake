file(REMOVE_RECURSE
  "CMakeFiles/core_async_test.dir/core_async_test.cc.o"
  "CMakeFiles/core_async_test.dir/core_async_test.cc.o.d"
  "core_async_test"
  "core_async_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_async_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
