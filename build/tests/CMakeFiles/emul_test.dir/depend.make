# Empty dependencies file for emul_test.
# This may be replaced when dependencies are built.
