file(REMOVE_RECURSE
  "CMakeFiles/emul_test.dir/emul_test.cc.o"
  "CMakeFiles/emul_test.dir/emul_test.cc.o.d"
  "emul_test"
  "emul_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emul_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
