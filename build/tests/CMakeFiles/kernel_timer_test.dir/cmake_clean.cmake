file(REMOVE_RECURSE
  "CMakeFiles/kernel_timer_test.dir/kernel_timer_test.cc.o"
  "CMakeFiles/kernel_timer_test.dir/kernel_timer_test.cc.o.d"
  "kernel_timer_test"
  "kernel_timer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_timer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
