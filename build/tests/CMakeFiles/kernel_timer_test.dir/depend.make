# Empty dependencies file for kernel_timer_test.
# This may be replaced when dependencies are built.
