# Empty dependencies file for micro_pattern_test.
# This may be replaced when dependencies are built.
