file(REMOVE_RECURSE
  "CMakeFiles/micro_pattern_test.dir/micro_pattern_test.cc.o"
  "CMakeFiles/micro_pattern_test.dir/micro_pattern_test.cc.o.d"
  "micro_pattern_test"
  "micro_pattern_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
