file(REMOVE_RECURSE
  "CMakeFiles/codegen_peephole_test.dir/codegen_peephole_test.cc.o"
  "CMakeFiles/codegen_peephole_test.dir/codegen_peephole_test.cc.o.d"
  "codegen_peephole_test"
  "codegen_peephole_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_peephole_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
