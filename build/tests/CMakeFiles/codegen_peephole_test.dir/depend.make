# Empty dependencies file for codegen_peephole_test.
# This may be replaced when dependencies are built.
