# Empty dependencies file for core_credentials_test.
# This may be replaced when dependencies are built.
