file(REMOVE_RECURSE
  "CMakeFiles/core_credentials_test.dir/core_credentials_test.cc.o"
  "CMakeFiles/core_credentials_test.dir/core_credentials_test.cc.o.d"
  "core_credentials_test"
  "core_credentials_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_credentials_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
