file(REMOVE_RECURSE
  "CMakeFiles/fs_mount_test.dir/fs_mount_test.cc.o"
  "CMakeFiles/fs_mount_test.dir/fs_mount_test.cc.o.d"
  "fs_mount_test"
  "fs_mount_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_mount_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
