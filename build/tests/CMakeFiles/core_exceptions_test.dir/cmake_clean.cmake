file(REMOVE_RECURSE
  "CMakeFiles/core_exceptions_test.dir/core_exceptions_test.cc.o"
  "CMakeFiles/core_exceptions_test.dir/core_exceptions_test.cc.o.d"
  "core_exceptions_test"
  "core_exceptions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_exceptions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
