# Empty compiler generated dependencies file for core_exceptions_test.
# This may be replaced when dependencies are built.
