file(REMOVE_RECURSE
  "CMakeFiles/codegen_jit_test.dir/codegen_jit_test.cc.o"
  "CMakeFiles/codegen_jit_test.dir/codegen_jit_test.cc.o.d"
  "codegen_jit_test"
  "codegen_jit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_jit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
