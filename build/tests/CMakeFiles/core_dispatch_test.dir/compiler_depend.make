# Empty compiler generated dependencies file for core_dispatch_test.
# This may be replaced when dependencies are built.
