file(REMOVE_RECURSE
  "CMakeFiles/core_dispatch_test.dir/core_dispatch_test.cc.o"
  "CMakeFiles/core_dispatch_test.dir/core_dispatch_test.cc.o.d"
  "core_dispatch_test"
  "core_dispatch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dispatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
