# Empty dependencies file for core_order_model_test.
# This may be replaced when dependencies are built.
