file(REMOVE_RECURSE
  "CMakeFiles/codegen_encoder_test.dir/codegen_encoder_test.cc.o"
  "CMakeFiles/codegen_encoder_test.dir/codegen_encoder_test.cc.o.d"
  "codegen_encoder_test"
  "codegen_encoder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_encoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
