# Empty compiler generated dependencies file for rt_thread_pool_test.
# This may be replaced when dependencies are built.
