file(REMOVE_RECURSE
  "CMakeFiles/rt_thread_pool_test.dir/rt_thread_pool_test.cc.o"
  "CMakeFiles/rt_thread_pool_test.dir/rt_thread_pool_test.cc.o.d"
  "rt_thread_pool_test"
  "rt_thread_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_thread_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
