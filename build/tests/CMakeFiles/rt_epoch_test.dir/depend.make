# Empty dependencies file for rt_epoch_test.
# This may be replaced when dependencies are built.
