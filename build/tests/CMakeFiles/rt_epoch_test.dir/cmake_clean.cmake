file(REMOVE_RECURSE
  "CMakeFiles/rt_epoch_test.dir/rt_epoch_test.cc.o"
  "CMakeFiles/rt_epoch_test.dir/rt_epoch_test.cc.o.d"
  "rt_epoch_test"
  "rt_epoch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_epoch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
